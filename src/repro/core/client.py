"""The ArkFS client: near-POSIX operations with client-driven metadata.

Each client node runs one of these. It implements the full VFS surface by:

1. resolving paths component-by-component against local metatables (when it
   leads the directory), its permission cache (pcache mode), or the current
   leader via RPC (Fig. 3);
2. executing metadata mutations locally when it is the directory leader —
   journaled into the per-directory compound transaction — or forwarding
   them to the leader;
3. running data I/O through its write-back data-object cache under file
   read/write leases issued by the parent directory's leader.

Background processes per client: journal commit/checkpoint threads and a
*lease keeper* that extends leases on directories still in use (dirty
journal, open files, or recent activity) and cleanly flushes + releases the
rest before they lapse.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from ..objectstore.errors import NoSuchKey, TransientError
from ..obs.trace import span as _span
from ..posix import path as pathmod
from ..posix.acl import Acl, check_perm
from ..posix.errors import (
    AlreadyExists,
    BadFileHandle,
    FSError,
    InvalidArgument,
    IOFailure,
    IsADirectory,
    NotADirectory,
    NotFound,
    PermissionDenied,
    TooManySymlinks,
    UnsupportedOperation,
)
from ..posix.types import Credentials, FileType, OpenFlags, F_OK, X_OK
from ..posix.vfs import FileHandle, VFSClient
from ..sim.engine import Interrupt, SimGen, Simulator
from ..sim.network import MessageDropped, Node, NodeDown
from .cache import DataObjectCache, ReadAheadState
from .filelease import DIRECT, FileLeaseGrant, READ, WRITE, FileLeaseService
from .journal import JournalManager
from .lease import LeaseGrant, LeaseRedirect, LeaseWait
from .metatable import Metatable, RemoteTable, load_metatable
from .ops import LeaderOps, RedirectError
from .pack import PackWriter
from .params import ArkFSParams
from .prt import PRT
from .qos import TenantBusy
from .recovery import (
    DECISION_ABORT,
    DECISION_COMMIT,
    recover_directory,
    roll_forward_split,
)
from .retry import RetryPolicy
from .shards import ShardMap, ShardRange, make_ranges
from .types import Dentry, Inode, InoAllocator, ROOT_INO, ino_hex

__all__ = ["ArkFSClient", "OpenState"]


@dataclass
class OpenState:
    """Per-open-file private state hung off the VFS handle."""

    parent_ino: int
    name: str
    size: int
    mtime: float
    lease: Optional[FileLeaseGrant] = None
    ra: ReadAheadState = field(default_factory=ReadAheadState)
    wrote: bool = False


class ArkFSClient(LeaderOps, VFSClient):
    """One ArkFS client (typically one per client node)."""

    def __init__(self, sim: Simulator, node: Node, prt: PRT,
                 params: ArkFSParams, lease_service,
                 alloc: InoAllocator):
        """``lease_service`` routes lease RPCs: anything with a
        ``node_for(dir_ino) -> Node`` method (a single LeaseManager, a
        LeaseManagerCluster, or a bare Node for backward compatibility)."""
        self.sim = sim
        self.node = node
        self.prt = prt
        self.params = params
        if isinstance(lease_service, Node):
            self._lease_node_for = lambda _ino, n=lease_service: n
        else:
            self._lease_node_for = lease_service.node_for
        self.alloc = alloc
        self.name = node.name
        self.alive = True

        self.metatables: Dict[int, Metatable] = {}
        self.remotes: Dict[int, RemoteTable] = {}
        # Permission cache (pcache mode): dir ino -> (dir Inode, expiry)
        self.pcache: Dict[int, Tuple[Inode, float]] = {}
        self.pcache_dentries: Dict[Tuple[int, str], Tuple[Dentry, float]] = {}

        self._retry = RetryPolicy.from_params(sim, params)
        self.journal = JournalManager(sim, prt, params, node, self.name)
        # Packed small-file containers (off by default: self.pack stays
        # None and every data path is structurally unchanged).
        self.pack: Optional[PackWriter] = None
        if params.pack_enabled:
            self.pack = PackWriter(sim, prt, self.journal, node, params,
                                   self.name, self._leads_dir,
                                   retry=self._retry)
        self.cache = DataObjectCache(
            sim, prt, node,
            entry_size=params.data_object_size,
            capacity_bytes=params.cache_capacity_bytes,
            max_readahead=params.max_readahead,
            copy_bw=params.cache_copy_bw,
            fetch_parallel=params.fetch_parallel,
            writeback_parallel=params.writeback_parallel,
            retry=self._retry,
            pack=self.pack,
        )
        self.fleases = FileLeaseService(sim, params.file_lease_period,
                                        self._revoke_holder)
        self._open_dirs: Dict[int, int] = {}   # parent dir ino -> open handles
        self._acquiring: Dict[int, Any] = {}   # dir ino -> in-flight latch
        self._pending_names: Set[Tuple[int, str]] = set()
        self._pending_renames: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._rename_counter = 0
        self.op_stats: Dict[str, int] = {}

        # Elastic metadata plane (directory sharding). ``_split_busy`` is
        # None when shards are disabled, which keeps every dispatch path
        # structurally identical to a build without the shard subsystem.
        self._shard_maps: Dict[int, ShardMap] = {}    # parent ino -> map
        self._shard_home: Dict[int, Tuple[int, int]] = {}  # shard -> (parent, home)
        # Client population for shard-lease placement (set by build_arkfs;
        # empty = first-touch acquisition only). Names, not objects, so a
        # crashed-and-restarted peer stays addressable.
        self.peers: list = []
        self._split_busy: Optional[Dict[int, Any]] = \
            {} if params.shards_enabled else None
        self._splitters: Dict[int, Any] = {}   # dir ino -> split process
        self._dir_inflight: Dict[int, int] = {}
        self._mgr_epoch_seen: Dict[int, int] = {}
        # Epoch fencing (lease-manager cluster mode): stale-authority journal
        # commits are refused against the cluster's fencing registry.
        self._fencing = getattr(lease_service, "fencing", None)
        self._wire_fencing()

        # Multi-tenant QoS plane (off by default: both stay None and every
        # dispatch/data path is structurally unchanged; build_arkfs installs
        # the manager and a tenant when qos_enabled).
        self.qos = None
        self.tenant: Optional[str] = None
        self._qos_depth = 0  # admission applies to top-level ops only

        node.register("arkfs", self._h_dispatch)
        node.register("arkfs.cache_invalidate", self._h_cache_invalidate)
        self.journal.start_threads()
        self._keeper = sim.process(self._lease_keeper(),
                                   name=f"{self.name}.keeper")

    def bind_tenant(self, tenant: str) -> None:
        """Attribute subsequent ops from this client to ``tenant`` (the
        gateway model: one client fronting many tenants, switching between
        ops). Requires the QoS plane; per-op rebinding is safe as long as
        the client issues one foreground op at a time."""
        self.tenant = tenant
        self.node.tenant = tenant
        if self.qos is not None:
            self.qos.register_client(self.name, tenant)

    def _leads_dir(self, dir_ino: int) -> bool:
        """Do we currently hold this directory's metatable lease? (Extent
        deltas ride its journal when true; direct index RMW otherwise.)"""
        mt = self.metatables.get(dir_ino)
        return mt is not None and mt.lease_expires > self.sim.now

    def _wire_fencing(self) -> None:
        if self._fencing is not None:
            self.journal.fencing = self._fencing
            self.journal.token_of = self._fence_token

    def _fence_token(self, dir_ino: int) -> Tuple[int, int]:
        """Our fencing token for a directory's journal stream: the
        (manager-range epoch, directory epoch) of the lease we believe we
        hold. Lexicographically below any grant issued after a failover."""
        mt = self.metatables.get(dir_ino)
        if mt is None:
            return (0, 0)
        return (mt.mgr_epoch, mt.epoch)

    # ------------------------------------------------------------------ costs

    def _charge_md_op(self) -> SimGen:
        yield from self.node.work(self.params.md_op_cpu)

    def _charge_lookup(self) -> SimGen:
        yield from self.node.work(self.params.lookup_cpu)

    def _charge_journal(self, n_entries: int,
                        dir_ino: Optional[int] = None) -> SimGen:
        yield from self.node.work(n_entries * self.params.journal_entry_cpu)
        if dir_ino is not None and self.journal.sync_commit:
            # Ablation A2: no compound-transaction buffering — every
            # metadata mutation commits its journal record immediately.
            yield from self.journal.flush(dir_ino)

    # ----------------------------------------------------------- RPC plumbing

    def _h_dispatch(self, opname: str, kwargs: Dict[str, Any]) -> SimGen:
        """Leader-side entry point for forwarded operations."""
        yield from self.node.work(self.params.rpc_handler_cpu)
        ctx = kwargs.pop("shard_ctx", None)
        if ctx is not None:
            # The caller routed this op to one of a sharded directory's
            # shards: learn the shard's identity (parent ino, home shard)
            # before the lease path tries to load an inode it doesn't have.
            self._shard_home.setdefault(kwargs["dir_ino"], tuple(ctx))
        return (yield from self._run_op(opname, kwargs))

    def _run_op(self, opname: str, kwargs: Dict[str, Any]) -> SimGen:
        """Invoke a leader-side op handler, honoring the split gate.

        With shards disabled this is a plain call — no events, no state.
        With shards enabled, ops on a directory whose split is migrating
        dentries wait for the split to finish, and in-flight ops are
        counted so the splitter can drain them before freezing the range.
        """
        handler = getattr(self, "_op_" + opname)
        if self._split_busy is None:
            return (yield from handler(**kwargs))
        d = kwargs.get("dir_ino")
        while True:
            gate = self._split_busy.get(d)
            if gate is None:
                break
            yield gate
        self._dir_inflight[d] = self._dir_inflight.get(d, 0) + 1
        try:
            return (yield from handler(**kwargs))
        finally:
            n = self._dir_inflight.get(d, 1)
            if n <= 1:
                self._dir_inflight.pop(d, None)
            else:
                self._dir_inflight[d] = n - 1

    def _h_cache_invalidate(self, ino: int, deleted: bool = False) -> SimGen:
        """A leader revokes our cached data for a file (flush + drop).
        ``deleted`` means the file is being unlinked, not handed off."""
        yield from self.cache.invalidate(ino, flush_dirty=True,
                                         deleted=deleted)
        return True

    def _peer_call(self, leader: str, opname: str, **kwargs: Any) -> SimGen:
        target = self.node.net.nodes.get(leader)
        if target is None:
            raise NodeDown(f"unknown leader {leader}")
        kwargs.setdefault("requester", self.name)
        d = kwargs.get("dir_ino")
        if d is not None and d in self._shard_home:
            kwargs.setdefault("shard_ctx", self._shard_home[d])
        result = yield from self.node.call(target, "arkfs", opname, kwargs)
        return result

    def _mgr(self, method: str, *args: Any) -> SimGen:
        """Call the lease manager responsible for args[0] (a dir ino).

        Lost messages (fault injection) are retried with bounded exponential
        backoff — a dropped lease RPC must not surface as a dead manager.
        A genuinely dead manager still raises NodeDown immediately."""
        target = self._lease_node_for(args[0])
        return (yield from self._retry.call(
            lambda: self.node.call(target, method, *args),
            retry_on=(MessageDropped,)))

    # ------------------------------------------------------- lease acquisition

    def _acquire_dir(self, dir_ino: int) -> SimGen:
        """Become (or find) the directory's leader.

        Returns ``("local", metatable)``, ``("remote", leader_name)``, or —
        for a directory with an active shard map — ``("sharded", map)``:
        the caller must re-route the operation to one of the shards.
        """
        while True:
            now = self.sim.now
            if self._split_busy is not None:
                smap = self._shard_maps.get(dir_ino)
                if smap is not None:
                    return ("sharded", smap)
            mt = self.metatables.get(dir_ino)
            if mt is not None and mt.lease_expires > now:
                return ("local", mt)
            rt = self.remotes.get(dir_ino)
            if rt is not None and rt.valid(now):
                return ("remote", rt.leader)
            # Only one acquisition per directory may be in flight: a second
            # concurrent load could otherwise overwrite a metatable that has
            # already absorbed local mutations.
            latch = self._acquiring.get(dir_ino)
            if latch is not None:
                tr = self.sim._tracer
                if tr is not None:
                    with tr.span("lease.wait", "queue"):
                        yield latch
                else:
                    yield latch
                continue
            latch = self.sim.event()
            self._acquiring[dir_ino] = latch
            try:
                return (yield from self._acquire_dir_locked(dir_ino))
            finally:
                del self._acquiring[dir_ino]
                latch.succeed()

    def _acquire_dir_locked(self, dir_ino: int) -> SimGen:
        sp = _span(self.sim, "lease.acquire", "lease")
        try:
            return (yield from self._acquire_dir_inner(dir_ino))
        finally:
            sp.close()

    def _acquire_dir_inner(self, dir_ino: int) -> SimGen:
        while True:
            now = self.sim.now
            if self._split_busy is not None and dir_ino in self._shard_maps:
                return ("sharded", self._shard_maps[dir_ino])
            mt = self.metatables.get(dir_ino)
            if mt is not None and mt.lease_expires > now:
                return ("local", mt)
            rt = self.remotes.get(dir_ino)
            if rt is not None and rt.valid(now):
                return ("remote", rt.leader)
            if dir_ino in self._shard_home:
                # Shard-lease placement: route first-touch leadership by
                # consistent hash over the client population instead of
                # self-acquiring. Without this, the client that performs
                # the split (it alone already holds the map in memory)
                # wins the acquisition race for every shard and the
                # directory's metadata load stays on one node — exactly
                # the single-owner ceiling the split exists to break. A
                # known current holder (the remotes check above, or the
                # redirect below) always wins over the placement hint.
                pref = self._preferred_shard_leader(dir_ino)
                if pref is not None and pref != self.name:
                    return ("remote", pref)
            resp = yield from self._mgr("lease.acquire", dir_ino, self.name)
            if isinstance(resp, LeaseGrant):
                if resp.mgr_epoch < self._mgr_epoch_seen.get(dir_ino, 0):
                    # A grant from a deposed range authority, delayed in
                    # flight across a failover: never act on it.
                    yield self.sim.timeout(self.params.lease_retry_delay)
                    continue
                self._mgr_epoch_seen[dir_ino] = resp.mgr_epoch
                if resp.needs_recovery:
                    # Journal replay is idempotent, so transient store errors
                    # mid-recovery are absorbed by re-running it.
                    yield from self._retry.call(
                        lambda: recover_directory(self.prt, dir_ino,
                                                  src=self.node))
                    yield from self._mgr("lease.recovered", dir_ino, self.name)
                if not resp.fresh and mt is not None:
                    mt.lease_expires = resp.expires_at
                    mt.epoch = resp.epoch
                    mt.mgr_epoch = resp.mgr_epoch
                    return ("local", mt)
                # Shard tables have no inode of their own: the parent
                # directory's inode is the identity, the shard's key range
                # holds the dentries.
                shome = self._shard_home.get(dir_ino)
                base_ino = shome[0] if shome is not None else dir_ino
                try:
                    dir_inode = yield from self._retry.call(
                        lambda: self.prt.get_inode(base_ino, src=self.node))
                except NoSuchKey:
                    yield from self._mgr("lease.release", dir_ino, self.name,
                                         True)
                    raise NotFound(f"dir {dir_ino:x}", "directory removed")
                if self._split_busy is not None and shome is None:
                    smap = yield from self._retry.call(
                        lambda: self.prt.get_shard_map(dir_ino,
                                                       src=self.node))
                    if smap is not None:
                        if not smap.active:
                            # Interrupted split: we hold the parent lease
                            # (and recovery already ran), so roll forward.
                            smap = yield from self._retry.call(
                                lambda: roll_forward_split(self.prt, smap,
                                                           src=self.node))
                        self._cache_shard_map(smap)
                        yield from self._mgr("lease.release", dir_ino,
                                             self.name, True)
                        return ("sharded", smap)
                mt = yield from self._retry.call(
                    lambda: load_metatable(
                        self.prt, dir_inode, self.node,
                        resp.expires_at, resp.epoch,
                        list_ino=(dir_ino if shome is not None else None),
                        mgr_epoch=resp.mgr_epoch))
                self.metatables[dir_ino] = mt
                self.remotes.pop(dir_ino, None)
                self.pcache.pop(dir_ino, None)
                return ("local", mt)
            if isinstance(resp, LeaseRedirect):
                self.remotes[dir_ino] = RemoteTable(dir_ino, resp.leader,
                                                    resp.expires_at)
                return ("remote", resp.leader)
            assert isinstance(resp, LeaseWait)
            yield self.sim.timeout(
                max(resp.retry_at - self.sim.now,
                    self.params.lease_retry_delay)
            )

    def _ensure_leader(self, dir_ino: int) -> SimGen:
        """Leader-side revalidation; raises RedirectError if we are not it."""
        now = self.sim.now
        mt = self.metatables.get(dir_ino)
        if mt is not None and mt.lease_expires > now:
            mt.last_used = now
            mt_margin = mt.lease_expires - now
            if mt_margin < self.params.lease_renew_margin:
                sp = _span(self.sim, "lease.renew", "lease")
                try:
                    resp = yield from self._mgr("lease.acquire", dir_ino,
                                                self.name)
                finally:
                    sp.close()
                if isinstance(resp, LeaseGrant) and not resp.fresh:
                    mt.lease_expires = resp.expires_at
                elif isinstance(resp, LeaseRedirect):
                    self.metatables.pop(dir_ino, None)
                    raise RedirectError(dir_ino, resp.leader)
            return mt
        kind, who = yield from self._acquire_dir(dir_ino)
        if kind == "local":
            return who
        if kind == "sharded":
            # The directory split under us: callers re-route to a shard.
            raise RedirectError(dir_ino, None)
        raise RedirectError(dir_ino, who)

    def _authority_op(self, dir_ino: int, opname: str,
                      creds: Optional[Credentials], **kwargs: Any) -> SimGen:
        result, _where, _at = yield from self._authority_op_where(
            dir_ino, opname, creds, **kwargs)
        return result

    def _authority_op_where(self, dir_ino: int, opname: str,
                            creds: Optional[Credentials],
                            **kwargs: Any):
        """Dispatch an authority op, applying QoS admission + throttling to
        top-level ops when the QoS plane is installed. Plain function
        returning the generator to ``yield from`` (zero overhead off)."""
        if self.qos is None or self._qos_depth:
            return self._authority_op_core(dir_ino, opname, creds, **kwargs)
        return self._authority_op_qos(dir_ino, opname, creds, kwargs)

    def _authority_op_qos(self, dir_ino: int, opname: str,
                          creds: Optional[Credentials],
                          kwargs: Dict[str, Any]) -> SimGen:
        """QoS wrapper: ops token bucket + bounded in-flight admission
        (TenantBusy → EAGAIN, retried through the client retry policy),
        with the op's latency attributed to the tenant."""
        qos, tenant = self.qos, self.tenant
        yield from self._retry.call(lambda: qos.enter_op(tenant),
                                    retry_on=(TenantBusy,))
        t0 = self.sim.now
        self._qos_depth += 1
        try:
            result = yield from self._authority_op_core(
                dir_ino, opname, creds, **kwargs)
        finally:
            self._qos_depth -= 1
            qos.exit_op(tenant)
            qos.observe_op(tenant, self.sim.now - t0)
        return result

    def _authority_op_core(self, dir_ino: int, opname: str,
                           creds: Optional[Credentials],
                           **kwargs: Any) -> SimGen:
        """Run an op at the directory's authority; retries across leader
        changes. Returns (result, leader_name_or_None_if_local, dir_ino
        the op actually ran against — the hash-routed shard when the
        directory is sharded, so a 2PC coordinator can address phase 2 to
        the same participant its prepare landed on).

        ``route_name`` (popped, never forwarded) routes ino-keyed ops on a
        sharded directory to the shard that owns the given name."""
        self.op_stats[opname] = self.op_stats.get(opname, 0) + 1
        route_name = kwargs.pop("route_name", None)
        # Unreachable peers and transient store errors back off exponentially
        # (bounded by the attempt budget); redirects retry immediately, since
        # they carry fresh routing information.
        backoff = self.params.lease_retry_delay
        for _attempt in range(16):
            kind, who = yield from self._acquire_dir(dir_ino)
            try:
                if kind == "sharded":
                    done = yield from self._route_sharded(who, opname, creds,
                                                          kwargs)
                    if done is not None:
                        return (*done, dir_ino)
                    name = route_name or kwargs.get("name")
                    dir_ino = who.route(name) if name is not None \
                        else who.home_ino()
                    continue
                if kind == "local":
                    result = yield from self._run_op(opname, dict(
                        creds=creds, dir_ino=dir_ino, requester=self.name,
                        **kwargs))
                    return result, None, dir_ino
                result = yield from self._peer_call(
                    who, opname, creds=creds, dir_ino=dir_ino, **kwargs)
                return result, who, dir_ino
            except RedirectError as e:
                self.metatables.pop(dir_ino, None)
                if e.leader and e.leader != self.name:
                    self.remotes[dir_ino] = RemoteTable(
                        dir_ino, e.leader,
                        self.sim.now + self.params.lease_period)
                else:
                    self.remotes.pop(dir_ino, None)
                    if (self._split_busy is not None
                            and dir_ino not in self._shard_maps):
                        # A leaderless redirect usually means "the directory
                        # split under me". The ACTIVE shard map is immutable
                        # and readable without the parent lease, so resolve
                        # it from the store directly — chasing the manager
                        # instead points us at a parade of transient
                        # parent-lease holders (every client briefly takes
                        # the lease to learn the map) and can exhaust the
                        # attempt budget under a concurrent split.
                        try:
                            smap = yield from self._retry.call(
                                lambda: self.prt.get_shard_map(
                                    dir_ino, src=self.node))
                        except TransientError:
                            smap = None
                        if smap is not None and smap.active:
                            self._cache_shard_map(smap)
            except NodeDown:
                self.remotes.pop(dir_ino, None)
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, self.params.lease_period)
            except TransientError:
                # The op-level retries (journal/cache/PRT) already gave up:
                # the outage outlasted one inner backoff ladder. Wait longer
                # and re-dispatch. Like any at-most-once RPC retry this can
                # observe the first attempt's partial effect (e.g. mkdir →
                # EEXIST), which callers must treat as success-ambiguity.
                self._retry.note_retry(backoff)
                yield self.sim.timeout(backoff)
                backoff = min(backoff * 2.0, self.params.lease_period)
        raise IOFailure(detail=f"no stable authority for dir {dir_ino:x}")

    # -------------------------------------------------- directory sharding

    def _route_sharded(self, smap: ShardMap, opname: str,
                       creds: Optional[Credentials],
                       kwargs: Dict[str, Any]) -> SimGen:
        """Handle the ops that span a sharded directory's shards. Returns a
        finished ``(result, where)`` pair, or None when the op routes to a
        single shard (the caller re-dispatches there)."""
        if opname == "readdir":
            names: list = []
            for si in smap.shard_inos():
                part = yield from self._authority_op(si, "readdir", creds)
                names.extend(part)
            return (sorted(names), None)
        if opname == "rename_local":
            src_name, dst_name = kwargs["src_name"], kwargs["dst_name"]
            s_shard = smap.route(src_name)
            d_shard = smap.route(dst_name)
            if s_shard == d_shard:
                result = yield from self._authority_op(
                    s_shard, "rename_local", creds, src_name=src_name,
                    dst_name=dst_name)
                return (result, None)
            # The names hash to different shards: reuse the cross-directory
            # rename machinery (each shard has its own journal + lease).
            yield from self._rename_2pc(creds, s_shard, src_name,
                                        d_shard, dst_name)
            return (True, None)
        return None

    def _preferred_shard_leader(self, shard_ino: int) -> Optional[str]:
        """Placement for a shard's first-touch lease: the first live client
        walking a consistent-hash ring of the population (Ceph's
        dirfrag-to-MDS assignment, client-driven). Deterministic, so every
        client forwards a given shard's traffic to the same peer and the
        fanout spreads one hot directory's load across the fleet; a dead
        peer is skipped (the lease manager's FCFS grant remains the only
        authority — this is a routing hint, never a grant)."""
        peers = self.peers
        if not peers:
            return None
        start = zlib.crc32(ino_hex(shard_ino).encode()) % len(peers)
        for k in range(len(peers)):
            name = peers[(start + k) % len(peers)]
            if name == self.name:
                return name
            node = self.node.net.nodes.get(name)
            if node is not None and node.alive:
                return name
        return None

    def _cache_shard_map(self, smap: ShardMap) -> None:
        self._shard_maps[smap.dir_ino] = smap
        home = smap.home_ino()
        for r in smap.shards:
            self._shard_home[r.ino] = (smap.dir_ino, home)

    def _drop_shard_map(self, dir_ino: int) -> None:
        smap = self._shard_maps.pop(dir_ino, None)
        if smap is not None:
            for si in smap.shard_inos():
                self._shard_home.pop(si, None)

    def _maybe_split(self, mt: Metatable) -> None:
        """Create-path hook: kick off a background split once a directory
        we lead crosses the dentry threshold. Synchronous and a no-op
        unless shards are enabled."""
        if (self._split_busy is None or mt.is_shard
                or len(mt.dentries) < self.params.shard_split_threshold
                or mt.dir_ino in self._split_busy
                or mt.dir_ino in self._shard_maps):
            return
        d = mt.dir_ino
        self._split_busy[d] = self.sim.event()
        self._splitters[d] = self.sim.process(
            self._split_dir(d), name=f"{self.name}.split:{d:x}")

    def _split_dir(self, d: int) -> SimGen:
        """The two-phase directory split (see :mod:`repro.core.shards`).

        Runs under the parent lease we already hold. The ``_split_busy``
        gate (set by :meth:`_maybe_split`) holds new operations on the
        directory while in-flight ones drain; from the splitting-map PUT
        onward the parent range is frozen, so a failure anywhere after that
        point simply abandons the parent (the next lease holder rolls the
        split forward). Failures before the map PUT abort cleanly: the
        parent stays authoritative and nothing was published.
        """
        published = False
        try:
            while self._dir_inflight.get(d, 0) > 0:
                yield self.sim.timeout(0.0005)
            mt = self.metatables.get(d)
            now = self.sim.now
            if (mt is None
                    or mt.lease_expires - now < 2 * self.params.lease_renew_margin
                    or len(mt.dentries) < self.params.shard_split_threshold
                    or d in self._shard_maps
                    or any(di == d for _tx, di in self._pending_renames)
                    or any(di == d for di, _n in self._pending_names)):
                return
            # File leases move with the files to the shard leaders — the
            # same contract as cross-directory rename (see
            # ``_op_rename_prepare_src``). Revoke every holder while the
            # parent is still the sole authority: that flushes their dirty
            # write-back data, so no client survives the split holding a
            # grant (and stale cached bytes) the shard leaders never hear
            # about.
            for dn in list(mt.dentries.values()):
                if dn.ftype is FileType.REGULAR:
                    yield from self._revoke_all_holders(dn.ino)
                    self.fleases.forget_file(dn.ino)
            # Phase 0: store == metatable for this directory.
            yield from self.journal.flush(d, full=True)
            shards = [ShardRange(self.alloc.new(), lo, hi)
                      for lo, hi in make_ranges(self.params.shard_fanout)]
            smap = ShardMap(d, ShardMap.SPLITTING, shards)
            # Phase 1: publish the splitting map (parent still authoritative,
            # but its range is frozen from here on).
            yield from self._retry.call(
                lambda: self.prt.put_shard_map(smap, src=self.node))
            published = True
            # Phase 2 + commit: migrate ranges, then activate atomically.
            smap = yield from self._retry.call(
                lambda: roll_forward_split(self.prt, smap, src=self.node))
            self._cache_shard_map(smap)
        except (FSError, TransientError, MessageDropped, NodeDown,
                Interrupt):
            # Abort (pre-publish: parent keeps serving), abandon
            # (post-publish: the next lease holder rolls forward), or die
            # with the client (crash interrupts the splitter).
            pass
        finally:
            self._splitters.pop(d, None)
            if published and self.alive:
                # Success or not, the parent range is retired: drop our
                # parent state so the next acquire re-resolves (and, if the
                # activation PUT never landed, rolls the split forward).
                self.metatables.pop(d, None)
                self.journal.drop(d)
                try:
                    yield from self._mgr("lease.release", d, self.name, True)
                except NodeDown:
                    pass
            if self._split_busy is not None:
                ev = self._split_busy.pop(d, None)
                if ev is not None and not ev.triggered:
                    ev.succeed()

    # ------------------------------------------------------------- resolution

    def _lookup_component(self, creds: Optional[Credentials], dir_ino: int,
                          name: str) -> SimGen:
        """Resolve one name in one directory (Dentry)."""
        now = self.sim.now
        mt = self.metatables.get(dir_ino)
        if mt is not None and mt.lease_expires > now:
            mt.last_used = now
            yield from self._charge_lookup()
            self._check_dir_perm(mt, creds, X_OK)
            return mt.lookup(name)
        if self.params.permission_cache:
            pc = self.pcache.get(dir_ino)
            pd = self.pcache_dentries.get((dir_ino, name))
            if pc is not None and pc[1] > now and pd is not None and pd[1] > now:
                yield from self._charge_lookup()
                pi = pc[0]
                if creds is not None and not check_perm(
                    pi.acl, pi.mode, pi.uid, pi.gid, creds, X_OK
                ):
                    raise PermissionDenied(f"dir {dir_ino:x}")
                return pd[0]
        dentry_d, dir_inode_d = yield from self._authority_op(
            dir_ino, "lookup", creds, name=name)
        dentry = Dentry.from_dict(dentry_d)
        if self.params.permission_cache and dir_ino not in self.metatables:
            exp = now + self.params.lease_period
            self.pcache[dir_ino] = (Inode.from_dict(dir_inode_d), exp)
            self.pcache_dentries[(dir_ino, name)] = (dentry, exp)
        return dentry

    def _walk_dirs(self, creds: Optional[Credentials], parts: list,
                   depth: int = 0) -> SimGen:
        """Resolve a component list to a directory ino, following symlinks."""
        cur = ROOT_INO
        parts = list(parts)
        i = 0
        while i < len(parts):
            name = parts[i]
            dentry = yield from self._lookup_component(creds, cur, name)
            if dentry.ftype is FileType.DIRECTORY:
                cur = dentry.ino
                i += 1
                continue
            if dentry.ftype is FileType.SYMLINK:
                depth += 1
                if depth > self.params.symlink_max_follow:
                    raise TooManySymlinks(name)
                target = yield from self._authority_op(
                    cur, "readlink", creds, name=name)
                rest = parts[i + 1:]
                tparts, cur = self._expand_symlink(target, cur)
                parts = tparts + rest
                i = 0
                continue
            raise NotADirectory(name)
        return cur

    def _expand_symlink(self, target: str, cur: int):
        """Split a symlink target; absolute targets restart at the root."""
        if target.startswith("/"):
            return pathmod.split_path(target), ROOT_INO
        comps = [c for c in target.split("/") if c and c != "."]
        if ".." in comps:
            raise UnsupportedOperation(
                target, "relative symlink targets with '..' are unsupported")
        return comps, cur

    def _resolve_parent(self, creds: Optional[Credentials],
                        path: str) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            raise InvalidArgument(path, "operation needs a parent directory")
        parent = yield from self._walk_dirs(creds, parts[:-1])
        return parent, parts[-1]

    def _getattr_inode(self, creds: Optional[Credentials], path: str,
                       follow: bool, depth: int = 0) -> SimGen:
        """The full Inode of the path's final target (stat/lstat core)."""
        parts = pathmod.split_path(path)
        if not parts:
            d = yield from self._authority_op(ROOT_INO, "getattr_dir", creds)
            return Inode.from_dict(d)
        parent, name = yield from self._resolve_parent(creds, path)
        for _hop in range(4):
            dentry = yield from self._lookup_component(creds, parent, name)
            if dentry.ftype is FileType.DIRECTORY:
                d = yield from self._authority_op(dentry.ino, "getattr_dir",
                                                  creds)
                return Inode.from_dict(d)
            if dentry.ftype is FileType.SYMLINK and follow:
                if depth >= self.params.symlink_max_follow:
                    raise TooManySymlinks(path)
                target = yield from self._authority_op(
                    parent, "readlink", creds, name=name)
                tparts, base = self._expand_symlink(target, parent)
                if not tparts:
                    d = yield from self._authority_op(base, "getattr_dir",
                                                      creds)
                    return Inode.from_dict(d)
                parent = yield from self._walk_dirs_from(creds, base,
                                                         tparts[:-1])
                name = tparts[-1]
                depth += 1
                continue
            d = yield from self._authority_op(parent, "getattr_child", creds,
                                              name=name)
            if isinstance(d, dict) and "redirect_dir" in d:
                d = yield from self._authority_op(d["redirect_dir"],
                                                  "getattr_dir", creds)
            return Inode.from_dict(d)
        raise TooManySymlinks(path)

    def _walk_dirs_from(self, creds, base: int, parts: list) -> SimGen:
        cur = base
        for name in parts:
            dentry = yield from self._lookup_component(creds, cur, name)
            if dentry.ftype is not FileType.DIRECTORY:
                raise NotADirectory(name)
            cur = dentry.ino
        return cur

    def _drop_authority_hints(self, dir_ino: int) -> None:
        """Forget everything we believed about a removed/moved directory."""
        self.remotes.pop(dir_ino, None)
        self.pcache.pop(dir_ino, None)
        self._drop_shard_map(dir_ino)
        for key in [k for k in self.pcache_dentries if k[0] == dir_ino]:
            del self.pcache_dentries[key]

    # ------------------------------------------------------------ VFS: namespace

    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            raise AlreadyExists("/")
        parent, name = yield from self._resolve_parent(creds, path)
        yield from self._authority_op(parent, "mkdir", creds, name=name,
                                      mode=mode)

    def rmdir(self, creds: Credentials, path: str) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            raise InvalidArgument("/", "cannot rmdir the root")
        parent, name = yield from self._resolve_parent(creds, path)
        yield from self._authority_op(parent, "rmdir", creds, name=name)
        self.pcache_dentries.pop((parent, name), None)

    def readdir(self, creds: Credentials, path: str) -> SimGen:
        parts = pathmod.split_path(path)
        dir_ino = yield from self._walk_dirs(creds, parts)
        return (yield from self._authority_op(dir_ino, "readdir", creds))

    def unlink(self, creds: Credentials, path: str) -> SimGen:
        parent, name = yield from self._resolve_parent(creds, path)
        ino = yield from self._authority_op(parent, "unlink", creds, name=name)
        self.pcache_dentries.pop((parent, name), None)
        if isinstance(ino, int):
            yield from self.cache.invalidate(ino, flush_dirty=False,
                                             deleted=True)

    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen:
        src_n, dst_n = pathmod.normalize(src), pathmod.normalize(dst)
        if src_n == dst_n:
            if src_n == "/":
                raise InvalidArgument(src, "cannot rename the root")
            # rename(x, x) is a no-op only if x exists (POSIX).
            sp0, sname0 = yield from self._resolve_parent(creds, src_n)
            yield from self._lookup_component(creds, sp0, sname0)
            return
        if src_n == "/" or dst_n == "/":
            raise InvalidArgument(src, "cannot rename the root")
        if pathmod.is_ancestor(src_n, dst_n):
            raise InvalidArgument(dst, "destination is inside the source")
        sp, sname = yield from self._resolve_parent(creds, src_n)
        dp, dname = yield from self._resolve_parent(creds, dst_n)
        if sp == dp:
            yield from self._authority_op(sp, "rename_local", creds,
                                          src_name=sname, dst_name=dname)
        else:
            yield from self._rename_2pc(creds, sp, sname, dp, dname)
        self.pcache_dentries.pop((sp, sname), None)
        self.pcache_dentries.pop((dp, dname), None)

    def _rename_2pc(self, creds: Credentials, sp: int, sname: str, dp: int,
                    dname: str) -> SimGen:
        """Coordinator for a cross-directory rename (Section III-E)."""
        self._rename_counter += 1
        txid = f"{self.name}-rn-{self._rename_counter:06d}"
        dkey = self.prt.key_decision(txid)
        # Capture the ino each prepare actually ran against: on a sharded
        # directory that is the hash-routed shard, and phase 2 must address
        # the SAME participant (its journal holds the prepared txn).
        payload, src_leader, sp = yield from self._authority_op_where(
            sp, "rename_prepare_src", creds, name=sname, txid=txid,
            decision_key=dkey)
        try:
            _dst, dst_leader, dp = yield from self._authority_op_where(
                dp, "rename_prepare_dst", creds, name=dname, payload=payload,
                txid=txid, decision_key=dkey)
        except FSError:
            yield from self._retry.call(
                lambda: self.prt.store.put_if_absent(dkey, DECISION_ABORT,
                                                     src=self.node))
            yield from self._finish_participant(sp, src_leader, txid, False)
            raise
        won = yield from self._retry.call(
            lambda: self.prt.store.put_if_absent(dkey, DECISION_COMMIT,
                                                 src=self.node))
        if won:
            commit = True
        else:
            value = yield from self._retry.call(
                lambda: self.prt.store.get(dkey, src=self.node))
            commit = value == DECISION_COMMIT
        src_done = yield from self._finish_participant(sp, src_leader, txid,
                                                       commit)
        dst_done = yield from self._finish_participant(dp, dst_leader, txid,
                                                       commit)
        # The decision record may only die once nothing can consult it. If a
        # participant's phase 2 failed (leader churn), its journal still
        # holds the prepared transaction — recovery will resolve it against
        # this record, and deleting it now would let recovery write a fresh
        # "abort" after the other side already committed.
        if src_done and dst_done:
            try:
                yield from self._retry.call(
                    lambda: self.prt.store.delete(dkey, src=self.node))
            except NoSuchKey:
                pass
        if not commit:
            raise IOFailure(detail=f"rename {txid} aborted by recovery")

    def _finish_participant(self, dir_ino: int, leader: Optional[str],
                            txid: str, commit: bool) -> SimGen:
        """Phase 2 at one participant; tolerant of leader churn (the journal
        + decision record make recovery reach the same outcome). Returns
        True when the participant definitely resolved its prepared txn."""
        try:
            if leader is None:
                yield from self._run_op("rename_finish", dict(
                    creds=None, dir_ino=dir_ino, txid=txid, commit=commit,
                    requester=self.name))
            else:
                yield from self._peer_call(leader, "rename_finish",
                                           creds=None, dir_ino=dir_ino,
                                           txid=txid, commit=commit)
        except (NodeDown, RedirectError, FSError):
            return False
        return True

    # -------------------------------------------------------------- VFS: stat

    def stat(self, creds: Credentials, path: str) -> SimGen:
        inode = yield from self._getattr_inode(creds, path, follow=True)
        return inode.stat()

    def lstat(self, creds: Credentials, path: str) -> SimGen:
        inode = yield from self._getattr_inode(creds, path, follow=False)
        return inode.stat()

    def access(self, creds: Credentials, path: str, want: int) -> SimGen:
        inode = yield from self._getattr_inode(creds, path, follow=True)
        if want == F_OK:
            return True
        return check_perm(inode.acl, inode.mode, inode.uid, inode.gid,
                          creds, want)

    # -------------------------------------------------------- VFS: open & data

    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            raise IsADirectory("/")
        cur_path = path
        for _hop in range(self.params.symlink_max_follow):
            parent, name = yield from self._resolve_parent(creds, cur_path)
            info = yield from self._authority_op(
                parent, "open", creds, name=name, flags=int(flags), mode=mode)
            if "symlink" in info:
                target = info["symlink"]
                if target.startswith("/"):
                    cur_path = target
                else:
                    base, _ = pathmod.parent_and_name(
                        pathmod.normalize(cur_path))
                    cur_path = base.rstrip("/") + "/" + target
                continue
            inode = Inode.from_dict(info["inode"])
            if self.pack is not None and inode.ftype is FileType.REGULAR:
                self.pack.note_file_dir(inode.ino, parent)
            handle = FileHandle(inode.ino, flags, creds)
            handle.impl = OpenState(
                parent_ino=parent, name=name, size=inode.size,
                mtime=inode.mtime, lease=info.get("lease"),
            )
            if flags & OpenFlags.O_APPEND:
                handle.pos = inode.size
            self._open_dirs[parent] = self._open_dirs.get(parent, 0) + 1
            return handle
        raise TooManySymlinks(path)

    def _check_handle(self, handle: FileHandle) -> None:
        if handle.closed or not isinstance(handle.impl, OpenState):
            raise BadFileHandle(detail="handle closed or foreign")

    def _file_lease(self, handle: FileHandle, want: str) -> SimGen:
        """Ensure a valid (and sufficient) data lease for this handle."""
        st: OpenState = handle.impl
        g = st.lease
        now = self.sim.now
        if (g is not None and g.expires_at > now
                and not (want == WRITE and g.mode == READ)):
            return g
        sp = _span(self.sim, "lease.file", "lease")
        try:
            resp = yield from self._authority_op(
                st.parent_ino, "flease", None, ino=handle.ino, mode=want,
                route_name=st.name)
        finally:
            sp.close()
        grant: FileLeaseGrant = resp if isinstance(resp, FileLeaseGrant) \
            else resp["grant"]
        if g is None or grant.version != g.version:
            # We may have missed a revocation while our lease was lapsed:
            # any cached data is suspect.
            yield from self.cache.invalidate(handle.ino, flush_dirty=False)
        st.lease = grant
        return grant

    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen:
        self._check_handle(handle)
        if not handle.flags.wants_read:
            raise BadFileHandle(detail="not open for reading")
        st: OpenState = handle.impl
        pos = handle.pos if offset is None else offset
        grant = yield from self._file_lease(handle, READ)
        eff = max(0, min(size, st.size - pos))
        if self.qos is not None:
            yield from self.qos.throttle_bytes(self.tenant, eff)
        if eff == 0:
            data = b""
        elif grant.mode == DIRECT:
            data = yield from self.prt.read_data(handle.ino, pos, eff,
                                                 st.size, src=self.node)
        else:
            data = yield from self.cache.read(handle.ino, pos, eff, ra=st.ra)
        if offset is None:
            handle.pos = pos + len(data)
        return data

    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen:
        self._check_handle(handle)
        if not handle.flags.wants_write:
            raise BadFileHandle(detail="not open for writing")
        st: OpenState = handle.impl
        if handle.flags & OpenFlags.O_APPEND:
            pos = st.size
        else:
            pos = handle.pos if offset is None else offset
        grant = yield from self._file_lease(handle, WRITE)
        if self.qos is not None:
            yield from self.qos.throttle_bytes(self.tenant, len(data))
        if grant.mode == DIRECT:
            yield from self.prt.write_data(handle.ino, pos, data,
                                           src=self.node)
            st.size = max(st.size, pos + len(data))
            st.mtime = self.sim.now
            yield from self._authority_op(
                st.parent_ino, "update_inode", None, ino=handle.ino,
                size=st.size, mtime=st.mtime, route_name=st.name)
        else:
            yield from self.cache.write(handle.ino, pos, data,
                                        old_size=st.size)
            st.size = max(st.size, pos + len(data))
            st.mtime = self.sim.now
            st.wrote = True
        if offset is None:
            handle.pos = pos + len(data)
        return len(data)

    def fsync(self, handle: FileHandle) -> SimGen:
        self._check_handle(handle)
        st: OpenState = handle.impl
        yield from self.cache.flush(handle.ino)
        if st.wrote:
            yield from self._authority_op(
                st.parent_ino, "update_inode", None, ino=handle.ino,
                size=st.size, mtime=st.mtime, route_name=st.name)
            st.wrote = False
        yield from self._authority_op(st.parent_ino, "fsync_dir", None,
                                      route_name=st.name)

    def close(self, handle: FileHandle) -> SimGen:
        self._check_handle(handle)
        st: OpenState = handle.impl
        if st.wrote:
            # Publish size/mtime at the leader; data stays write-back cached.
            try:
                yield from self._authority_op(
                    st.parent_ino, "update_inode", None, ino=handle.ino,
                    size=st.size, mtime=st.mtime, route_name=st.name)
            except NotFound:
                pass  # file unlinked while open: nothing to publish
            st.wrote = False
        else:
            yield self.sim.timeout(0)
        handle.closed = True
        n = self._open_dirs.get(st.parent_ino, 1)
        if n <= 1:
            self._open_dirs.pop(st.parent_ino, None)
        else:
            self._open_dirs[st.parent_ino] = n - 1

    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen:
        yield from self._setattr(creds, path, {"size": size})

    # --------------------------------------------------------- VFS: attributes

    def _setattr(self, creds: Credentials, path: str,
                 changes: Dict[str, Any]) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            result = yield from self._authority_op(
                ROOT_INO, "setattr", creds, name=None, changes=changes)
            self.pcache.pop(ROOT_INO, None)
            return Inode.from_dict(result)
        parent, name = yield from self._resolve_parent(creds, path)
        dentry = yield from self._lookup_component(creds, parent, name)
        if dentry.ftype is FileType.DIRECTORY:
            result = yield from self._authority_op(
                dentry.ino, "setattr", creds, name=None, changes=changes)
            self.pcache.pop(dentry.ino, None)
        else:
            result = yield from self._authority_op(
                parent, "setattr", creds, name=name, changes=changes)
            if isinstance(result, dict) and "redirect_dir" in result:
                result = yield from self._authority_op(
                    result["redirect_dir"], "setattr", creds, name=None,
                    changes=changes)
        return Inode.from_dict(result)

    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen:
        yield from self._setattr(creds, path, {"mode": mode})

    def chown(self, creds: Credentials, path: str, uid: int,
              gid: int) -> SimGen:
        yield from self._setattr(creds, path, {"uid": uid, "gid": gid})

    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen:
        yield from self._setattr(creds, path, {"times": (atime, mtime)})

    def getfacl(self, creds: Credentials, path: str) -> SimGen:
        inode = yield from self._getattr_inode(creds, path, follow=True)
        return inode.acl.copy() if inode.acl else Acl.from_mode(inode.mode)

    def setfacl(self, creds: Credentials, path: str, acl: Acl) -> SimGen:
        yield from self._setattr(creds, path, {"acl": acl.to_dict()})

    # ------------------------------------------------------------- VFS: links

    def symlink(self, creds: Credentials, target: str,
                linkpath: str) -> SimGen:
        parent, name = yield from self._resolve_parent(creds, linkpath)
        yield from self._authority_op(parent, "symlink", creds, name=name,
                                      target=target)

    def readlink(self, creds: Credentials, path: str) -> SimGen:
        parent, name = yield from self._resolve_parent(creds, path)
        return (yield from self._authority_op(parent, "readlink", creds,
                                              name=name))

    def statfs(self, creds: Credentials) -> SimGen:
        """statfs(2): usage from the object store (one HEAD-weight round
        trip; counts come from the backend's accounting)."""
        yield from self._charge_md_op()
        usage = getattr(self.prt.store, "usage", None)
        if usage is None:
            raise UnsupportedOperation(detail="backend reports no usage")
        n_objects, used = usage()
        capacity = int(getattr(self.prt.store, "capacity_bytes", 8e12))
        bsize = 4096
        total_blocks = capacity // bsize
        used_blocks = -(-used // bsize)
        from ..posix.types import StatFSResult

        return StatFSResult(f_bsize=bsize, f_blocks=total_blocks,
                            f_bfree=max(0, total_blocks - used_blocks),
                            f_files=n_objects)

    # ---------------------------------------------------------------- durability

    def sync(self) -> SimGen:
        """Flush all dirty data and force-commit every journal (syncfs)."""
        yield from self.cache.flush_all()
        yield from self.journal.flush_all()

    def drop_caches(self) -> SimGen:
        """Flush then drop all cached data (fio's between-phase cache drop)."""
        yield from self.cache.drop_all()

    # --------------------------------------------------------- background upkeep

    def _lease_keeper(self) -> SimGen:
        """Extend in-use leases ahead of expiry; flush + release idle ones."""
        interval = max(self.params.lease_renew_margin / 2, 0.1)
        try:
            while self.alive:
                yield self.sim.timeout(interval)
                now = self.sim.now
                for dir_ino in list(self.metatables):
                    mt = self.metatables.get(dir_ino)
                    if mt is None:
                        continue
                    remaining = mt.lease_expires - now
                    if remaining > self.params.lease_renew_margin:
                        continue
                    if remaining <= 0:
                        # Lapsed: too late to safely write anything (a new
                        # leader may already exist). Discard local state.
                        self.metatables.pop(dir_ino, None)
                        self.journal.journals.pop(dir_ino, None)
                        continue
                    in_use = (
                        self.journal.is_dirty(dir_ino)
                        or self._open_dirs.get(dir_ino, 0) > 0
                        or now - mt.last_used < self.params.lease_period
                    )
                    if in_use:
                        sp = _span(self.sim, "lease.renew", "lease")
                        try:
                            resp = yield from self._mgr("lease.acquire",
                                                        dir_ino, self.name)
                        except NodeDown:
                            sp.close()
                            # Manager unreachable: "do its best to
                            # synchronize all the updates in memory before
                            # the lease is expired" (Section III-E).
                            yield from self._flush_dir_state(dir_ino)
                            continue
                        sp.close()
                        if isinstance(resp, LeaseGrant):
                            mt.lease_expires = resp.expires_at
                        else:
                            yield from self._flush_dir_state(dir_ino)
                            self.metatables.pop(dir_ino, None)
                    else:
                        yield from self._release_dir(dir_ino)
        except Interrupt:
            return

    def _flush_dir_state(self, dir_ino: int) -> SimGen:
        """Make a directory's in-memory state durable while the lease still
        holds: dirty file data first, then the journal."""
        mt = self.metatables.get(dir_ino)
        if mt is not None:
            yield from self.cache.flush_many(list(mt.inodes))
        yield from self.journal.flush(dir_ino)

    def _release_dir(self, dir_ino: int) -> SimGen:
        """Cleanly flush and surrender a directory we lead."""
        mt = self.metatables.pop(dir_ino, None)
        if mt is None:
            return
        # A clean release must leave the journal empty: the next leader gets
        # a no-recovery grant and loads the base objects directly.
        yield from self.journal.flush(dir_ino, full=True)
        self.journal.drop(dir_ino)
        for ino in list(mt.inodes):
            self.fleases.forget_file(ino)
        sp = _span(self.sim, "lease.release", "lease")
        try:
            yield from self._mgr("lease.release", dir_ino, self.name, True)
        except NodeDown:
            pass  # manager down: the lease will simply lapse
        finally:
            sp.close()

    def _revoke_holder(self, holder: str, ino: int,
                       deleted: bool = False) -> SimGen:
        """FileLeaseService callback: make one holder flush + drop a file."""
        if holder == self.name:
            yield from self.cache.invalidate(ino, flush_dirty=True,
                                             deleted=deleted)
            return
        target = self.node.net.nodes.get(holder)
        if target is None:
            raise NodeDown(holder)
        yield from self.node.call(target, "arkfs.cache_invalidate", ino,
                                  deleted)

    # ------------------------------------------------------------ failure injection

    def crash(self) -> None:
        """Sudden client failure: all volatile state is lost."""
        self.alive = False
        self.node.crash()
        self.journal.stop()
        self.cache.discard_all()
        if self.pack is not None:
            self.pack.discard()
        self.metatables.clear()
        self.remotes.clear()
        self.pcache.clear()
        self.pcache_dentries.clear()
        self._pending_names.clear()
        self._pending_renames.clear()
        self._open_dirs.clear()
        for latch in self._acquiring.values():
            if not latch.triggered:
                latch.succeed()
        self._acquiring.clear()
        self._shard_maps.clear()
        self._shard_home.clear()
        self._mgr_epoch_seen.clear()
        self._dir_inflight.clear()
        for proc in list(self._splitters.values()):
            proc.interrupt("crash")
        self._splitters.clear()
        if self._split_busy is not None:
            for ev in self._split_busy.values():
                if not ev.triggered:
                    ev.succeed()
            self._split_busy.clear()
        self.fleases.files.clear()
        if self.qos is not None:
            # Ops abandoned mid-throttle never reach their exit_op; drop
            # the tenant's in-flight accounting so recovery isn't starved.
            self.qos.release_tenant(self.tenant)
            self._qos_depth = 0
        self._keeper.interrupt("crash")

    def restart(self) -> None:
        """Bring the crashed client back with empty caches."""
        self.alive = True
        self.node.restart()
        self.journal = JournalManager(self.sim, self.prt, self.params,
                                      self.node, self.name)
        self._wire_fencing()
        self.journal.start_threads()
        if self.pack is not None:
            self.pack.restart(self.journal)
        self._keeper = self.sim.process(self._lease_keeper(),
                                        name=f"{self.name}.keeper")
