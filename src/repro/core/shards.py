"""Hash-ranged directory shards (the elastic metadata plane).

A directory whose dentry count crosses ``shard_split_threshold`` is split
into ``shard_fanout`` *sub-shards*. Each shard is an ordinary directory to
the rest of the stack — it has its own ino, its own ``e<shard>/`` dentry
range, its own journal stream and its own lease — but it has no inode
object of its own: the parent's inode stays the directory's identity, and
a small *shard map* object (``s<parent>``) records how the name space is
partitioned.

Names route by ``crc32(name)`` over the full 32-bit hash space, which the
map divides into contiguous ``[lo, hi)`` ranges, one per shard. The map is
a total partition: every name routes to exactly one shard.

The split is a journaled two-phase protocol whose commit point is a single
atomic PUT:

1. flush the parent's journal (store == metatable), then PUT the map in
   state ``"splitting"`` — the parent range is still the only authority;
2. copy every dentry to its shard's range (batched PUTs), delete the
   parent-range dentries;
3. PUT the map in state ``"active"`` — this is the commit point; from here
   the shards are authoritative and the parent range is retired.

A crash anywhere in between leaves either no map (parent authoritative,
nothing happened) or a ``"splitting"`` map (parent authoritative; the next
leader *rolls the split forward* — every step is idempotent) or an
``"active"`` map (shards authoritative; leftover parent-range dentries are
impossible because they are deleted before activation). There is exactly
one authoritative layout at every crash point, which
``repro.faults.crashcheck``'s ``shard_split`` workload enumerates.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .types import ino_hex

__all__ = ["HASH_SPACE", "ShardRange", "ShardMap", "name_hash",
           "make_ranges"]

#: Names hash into ``[0, HASH_SPACE)`` via crc32.
HASH_SPACE = 1 << 32


def name_hash(name: str) -> int:
    return zlib.crc32(name.encode("utf-8", "surrogatepass"))


def make_ranges(fanout: int) -> List[Tuple[int, int]]:
    """Split the hash space into ``fanout`` contiguous ``[lo, hi)`` ranges."""
    if fanout < 2:
        raise ValueError("shard fanout must be at least 2")
    step = HASH_SPACE // fanout
    bounds = [i * step for i in range(fanout)] + [HASH_SPACE]
    return [(bounds[i], bounds[i + 1]) for i in range(fanout)]


@dataclass(frozen=True)
class ShardRange:
    """One shard: the ino whose ``e<ino>/`` range holds names hashing
    into ``[lo, hi)``."""

    ino: int
    lo: int
    hi: int

    def covers(self, h: int) -> bool:
        return self.lo <= h < self.hi


class ShardMap:
    """The persisted partition of one sharded directory (``s<parent>``)."""

    __slots__ = ("dir_ino", "state", "shards")

    SPLITTING = "splitting"
    ACTIVE = "active"

    def __init__(self, dir_ino: int, state: str, shards: List[ShardRange]):
        if state not in (self.SPLITTING, self.ACTIVE):
            raise ValueError(f"unknown shard-map state {state!r}")
        ordered = sorted(shards, key=lambda r: r.lo)
        if not ordered or ordered[0].lo != 0 or ordered[-1].hi != HASH_SPACE:
            raise ValueError("shard ranges must cover the hash space")
        for a, b in zip(ordered, ordered[1:]):
            if a.hi != b.lo:
                raise ValueError("shard ranges must be contiguous")
        self.dir_ino = dir_ino
        self.state = state
        self.shards = ordered

    @property
    def active(self) -> bool:
        return self.state == self.ACTIVE

    def shard_for_hash(self, h: int) -> ShardRange:
        for r in self.shards:
            if r.covers(h):
                return r
        raise AssertionError("total partition violated")  # unreachable

    def route(self, name: str) -> int:
        """The ino of the shard authoritative for ``name``."""
        return self.shard_for_hash(name_hash(name)).ino

    def shard_inos(self) -> List[int]:
        return [r.ino for r in self.shards]

    def home_ino(self) -> int:
        """The designated shard that owns the parent *inode* updates
        (setattr on the directory itself, getattr_dir): the one covering
        hash 0. Serializing those at one shard keeps the parent inode a
        single-writer object."""
        return self.shards[0].ino

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        return json.dumps({
            "dir": ino_hex(self.dir_ino),
            "state": self.state,
            "shards": [[ino_hex(r.ino), r.lo, r.hi] for r in self.shards],
        }, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ShardMap":
        d = json.loads(raw)
        return cls(dir_ino=int(d["dir"], 16), state=d["state"],
                   shards=[ShardRange(int(s[0], 16), int(s[1]), int(s[2]))
                           for s in d["shards"]])

    def with_state(self, state: str) -> "ShardMap":
        return ShardMap(self.dir_ino, state, self.shards)


def parse_shard_map(raw: Optional[bytes]) -> Optional[ShardMap]:
    return None if raw is None else ShardMap.from_bytes(raw)
