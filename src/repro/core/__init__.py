"""ArkFS core: the paper's primary contribution.

* :mod:`params` — every tunable (lease period, journal interval, cache sizes).
* :mod:`types` — UUID inode numbers, :class:`Inode`, :class:`Dentry`.
* :mod:`prt` — the POSIX-REST Translator (key schema + chunked data path).
* :mod:`lease` — the FCFS directory lease manager.
* :mod:`metatable` — per-directory metadata tables and remote pointers.
* :mod:`journal` — per-directory compound-transaction journaling + 2PC.
* :mod:`cache` — the write-back data object cache with adaptive read-ahead.
* :mod:`pack` — packed small-file containers (log-structured packing,
  extent index, background compaction).
* :mod:`filelease` — read/write leases on file data (leader-issued).
* :mod:`qos` — multi-tenant QoS: token buckets, WFQ, admission control.
* :mod:`client` / :mod:`ops` — the ArkFS client and its leader-side ops.
* :mod:`recovery` — journal replay after client / manager failures.
* :mod:`fs` — cluster assembly (:func:`build_arkfs`).
"""

from .cache import DataObjectCache, ReadAheadState
from .client import ArkFSClient, OpenState
from .filelease import DIRECT, READ, WRITE, FileLeaseGrant, FileLeaseService
from .fs import ArkFSCluster, build_arkfs, mkfs
from .fsck import FsckReport, fsck
from .journal import (
    JournalManager,
    Transaction,
    apply_ops,
    ops_clear_extents,
    ops_del_dentry,
    ops_del_extents,
    ops_del_inode,
    ops_put_dentry,
    ops_put_inode,
    ops_set_extents,
)
from .lease import LeaseGrant, LeaseManager, LeaseRedirect, LeaseWait
from .metatable import Metatable, RemoteTable, load_metatable
from .ops import RedirectError
from .pack import PackWriter
from .params import DEFAULT_PARAMS, ArkFSParams
from .prt import PRT
from .qos import QosManager, TenantBusy, TokenBucket, WFQResource
from .radix import RadixTree
from .recovery import recover_directory, resolve_decision, scan_journal
from .types import Dentry, Inode, InoAllocator, PackExtent, ROOT_INO, ino_hex

__all__ = [
    "ArkFSClient",
    "ArkFSCluster",
    "ArkFSParams",
    "DEFAULT_PARAMS",
    "DIRECT",
    "DataObjectCache",
    "FsckReport",
    "Dentry",
    "FileLeaseGrant",
    "FileLeaseService",
    "Inode",
    "InoAllocator",
    "JournalManager",
    "LeaseGrant",
    "LeaseManager",
    "LeaseRedirect",
    "LeaseWait",
    "Metatable",
    "OpenState",
    "PRT",
    "PackExtent",
    "PackWriter",
    "QosManager",
    "READ",
    "ROOT_INO",
    "RadixTree",
    "ReadAheadState",
    "RedirectError",
    "RemoteTable",
    "TenantBusy",
    "TokenBucket",
    "Transaction",
    "WFQResource",
    "WRITE",
    "apply_ops",
    "build_arkfs",
    "fsck",
    "ino_hex",
    "load_metatable",
    "mkfs",
    "ops_clear_extents",
    "ops_del_dentry",
    "ops_del_extents",
    "ops_del_inode",
    "ops_put_dentry",
    "ops_put_inode",
    "ops_set_extents",
    "recover_directory",
    "resolve_decision",
    "scan_journal",
]
