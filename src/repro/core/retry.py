"""Bounded exponential backoff for retryable storage / transport failures.

Object stores fail transiently (S3 503 SlowDown, RADOS EAGAIN); a real
client SDK absorbs those with capped exponential backoff. Every component
that talks to the store (journal commit/checkpoint, cache writeback and
fetch, the 2PC coordinator, recovery driven from lease acquisition) wraps
its store calls in a :class:`RetryPolicy` so an injected
:class:`~repro.objectstore.errors.TransientError` never kills a background
thread or leaks out of a VFS call — it costs backoff time instead.

Retries are observable: every retry increments ``store.retry.attempts`` and
records the backoff slept in the ``store.retry.backoff`` histogram (one
registry-wide pair, so BENCH output shows the aggregate when faults are
enabled). Without faults no TransientError is ever raised and the wrapper
adds zero simulation events — no-fault runs stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Tuple, Type

from ..objectstore.errors import TransientError
from ..sim.engine import SimGen, Simulator

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Retry a coroutine factory on selected exceptions, backing off
    ``base, 2*base, 4*base, ...`` capped at ``cap``, at most ``limit``
    retries (so ``limit + 1`` attempts total) — then re-raise."""

    __slots__ = ("sim", "limit", "base", "cap",
                 "_c_attempts", "_c_giveups", "_h_backoff")

    def __init__(self, sim: Simulator, limit: int = 6, base: float = 1e-3,
                 cap: float = 0.064):
        self.sim = sim
        self.limit = limit
        self.base = base
        self.cap = cap
        from ..obs import Observability

        m = Observability.of(sim).metrics.scope("store.retry")
        self._c_attempts = m.counter("attempts")
        self._c_giveups = m.counter("giveups")
        self._h_backoff = m.histogram("backoff")

    @classmethod
    def from_params(cls, sim: Simulator, params) -> "RetryPolicy":
        return cls(sim, limit=params.store_retry_limit,
                   base=params.store_retry_base, cap=params.store_retry_cap)

    def note_retry(self, delay: float) -> None:
        """Count a retry performed by an external loop (e.g. the client's
        whole-op redispatch on TransientError) in the shared metrics."""
        self._c_attempts.inc()
        self._h_backoff.observe(delay)
        rec = self.sim._recorder
        if rec is not None:
            rec.record("store.retry", delay=delay)

    def call(self, factory: Callable[[], SimGen],
             retry_on: Tuple[Type[BaseException], ...] = (TransientError,)
             ) -> SimGen:
        """Run ``factory()`` (a fresh coroutine per attempt) to completion.

        The factory must be idempotent: ArkFS store ops qualify (PUTs carry
        full state, deletes tolerate absence, decision creates are
        exclusive), which is what makes blind retry safe."""
        delay = self.base
        for attempt in range(self.limit + 1):
            try:
                return (yield from factory())
            except retry_on:
                rec = self.sim._recorder
                if attempt >= self.limit:
                    self._c_giveups.inc()
                    if rec is not None:
                        rec.record("store.retry.giveup", attempts=attempt + 1)
                    raise
                self._c_attempts.inc()
                self._h_backoff.observe(delay)
                if rec is not None:
                    rec.record("store.retry", attempt=attempt + 1, delay=delay)
                yield self.sim.timeout(delay)
                delay = min(delay * 2.0, self.cap)
        raise AssertionError("unreachable")
