"""All ArkFS tunables in one place.

Defaults follow the paper where it states a value (5 s lease period, 2 MB
cache entries, 8 MB max read-ahead matching CephFS, 1 s in-memory
transaction buffering); the CPU service costs are this reproduction's
calibration knobs (see EXPERIMENTS.md for the calibration story).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ArkFSParams", "DEFAULT_PARAMS"]

KiB = 1024
MiB = 1024 * KiB


@dataclass(frozen=True)
class ArkFSParams:
    # --- lease management (Section III-B) ---------------------------------
    lease_period: float = 5.0        # seconds a metatable lease is valid
    lease_renew_margin: float = 1.0  # renew when this close to expiry
    lease_retry_delay: float = 0.05  # wait before retrying a blocked acquire

    # --- per-directory journaling (Section III-E) --------------------------
    journal_commit_interval: float = 1.0   # compound-transaction buffering;
                                           # 0 = commit synchronously per op
                                           # (ablation A2: no compounding)
    n_commit_threads: int = 4              # journals statically mapped by ino
    n_checkpoint_threads: int = 4
    single_journal: bool = False           # ablation A1: one global journal
                                           # instead of per-directory ones
                                           # (breaks per-dir recovery; for
                                           # benchmarking only)

    # --- data object cache (Section III-D) ---------------------------------
    data_object_size: int = 2 * MiB        # PRT chunking == cache entry size
    cache_capacity_bytes: int = 256 * MiB  # per-client object cache
    max_readahead: int = 8 * MiB           # default, same as CephFS
    file_lease_period: float = 5.0         # read/write lease on file data

    # --- parallel I/O fan-out (scatter-gather data path) --------------------
    fetch_parallel: int = 16               # concurrent demand-read GETs per
                                           # request (1 = serial ablation)
    writeback_parallel: int = 8            # concurrent flusher-thread PUTs

    # --- permission caching mode (Section III-C) ----------------------------
    permission_cache: bool = True          # ArkFS-pcache vs ArkFS-no-pcache

    # --- packed small-file containers (archiving / Table 2) -----------------
    pack_enabled: bool = False             # off by default: runs stay
                                           # structurally identical to a build
                                           # without the pack subsystem
    pack_threshold: int = 256 * KiB        # chunks smaller than this are
                                           # appended to a container object
                                           # instead of PUT individually
    pack_target_size: int = 8 * MiB        # seal the open container once it
                                           # reaches this many bytes
    pack_seal_age: float = 1.0             # ... or once its oldest byte is
                                           # this old (seconds)
    pack_compact_live_ratio: float = 0.5   # rewrite a sealed container when
                                           # live/total drops below this

    # --- elastic metadata plane: directory sharding -------------------------
    shards_enabled: bool = False           # off by default: runs stay
                                           # structurally identical to a build
                                           # without the shard subsystem
    shard_split_threshold: int = 4096      # split a directory once its dentry
                                           # count crosses this
    shard_fanout: int = 4                  # hash-ranged sub-shards per split

    # --- hot/cold tiered object store ---------------------------------------
    tier_enabled: bool = False             # off by default: runs stay
                                           # structurally identical to a build
                                           # without the tier subsystem
    tier_hot_capacity: int = 64 * MiB      # fast-tier resident-byte budget
    tier_high_watermark: float = 0.9       # demote once hot bytes exceed
                                           # high * capacity ...
    tier_low_watermark: float = 0.7        # ... down to low * capacity
    tier_dirty_max: int = 32 * MiB         # staged-not-drained byte bound;
                                           # writers wait for the drain (never
                                           # for demotion) beyond this
    tier_drain_interval: float = 0.5       # background drain ticker period
    tier_drain_batch: int = 32             # objects per drain batch
    tier_promote_max: int = 8 * MiB        # promote whole objects up to this
                                           # size; larger ones (pack
                                           # containers) serve range GETs cold

    # --- multi-tenant QoS plane ---------------------------------------------
    qos_enabled: bool = False              # off by default: runs stay
                                           # structurally identical to a build
                                           # without the QoS subsystem
    qos_default_weight: float = 1.0        # WFQ weight for unregistered tenants
    qos_ops_rate: float = 2000.0           # per-tenant metadata ops/s
    qos_ops_burst: float = 64.0            # ... with this much burst credit
    qos_bytes_rate: float = 256 * MiB      # per-tenant data bytes/s
    qos_bytes_burst: float = 16 * MiB
    qos_max_inflight: int = 32             # admission control: concurrent
                                           # admitted ops per tenant; overflow
                                           # is EAGAIN (TenantBusy) + retry

    # --- transient-failure handling (client-side store SDK behavior) --------
    store_retry_limit: int = 6             # retries per op before giving up
    store_retry_base: float = 1e-3         # first backoff; doubles per retry
    store_retry_cap: float = 0.064         # backoff ceiling (bounded expo)

    # --- client-side CPU service costs (calibration) -------------------------
    md_op_cpu: float = 8e-6       # one local metadata operation on a metatable
    lookup_cpu: float = 2e-6      # one local component resolution
    journal_entry_cpu: float = 1e-6   # appending one op to the running txn
    cache_copy_bw: float = 8e9    # bytes/sec memcpy into/out of the cache
    rpc_handler_cpu: float = 4e-6     # leader-side work per forwarded op

    # --- lease manager -----------------------------------------------------------
    lease_op_cpu: float = 2e-6    # "acquiring/extending a lease is very
                                  # lightweight" (Section III-B)

    # --- misc -----------------------------------------------------------------
    symlink_max_follow: int = 40  # ELOOP bound, as in Linux

    def with_(self, **kw) -> "ArkFSParams":
        """A copy with some fields replaced (e.g. ``with_(max_readahead=400*MiB)``)."""
        return replace(self, **kw)


DEFAULT_PARAMS = ArkFSParams()
