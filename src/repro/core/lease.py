"""Directory lease management (Section III-B).

A single lease manager issues per-directory leases first-come-first-served.
The holder of a directory's lease (its *directory leader*) is the only party
allowed to modify that directory's metadata; other clients are redirected to
the leader. Re-acquisition by the same leader before expiry is an
*extension* — the leader's metatable stays valid and need not be reloaded.

Fault handling (Section III-E):

* If a lease expires without a clean release, the next grant carries
  ``needs_recovery`` and is *fenced*: the manager makes requesters wait one
  full lease period past the expiry so read/write leases issued by the dead
  leader have lapsed, then lets the new leader replay the journal; other
  clients wait until the new leader reports recovery complete.
* If the (standalone) manager itself crashes, a restart refuses all grants
  for one lease period (so no two clients can ever believe they lead the
  same directory).

Scale-out (:class:`LeaseManagerCluster`) hash-partitions directories over a
ring of managers. Each ring slot is a *range* whose authority carries a
monotonic **epoch**; on manager death the ring successor takes the range
over at ``epoch + 1`` behind a *per-range* fence window (one lease period —
only the affected range refuses grants; a restarted manager's other ranges
keep serving). Every grant is stamped with a ``(mgr_epoch, dir_epoch)``
fencing token, the shared :class:`FencingRegistry` tracks the highest token
ever granted per directory, and journal streams reject any commit carrying
a lower token — a deposed leader (a "zombie": still alive, believes its
lease valid) can therefore never overwrite state the new authority owns.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..posix.errors import IOFailure
from ..sim.engine import SimGen, Simulator
from ..sim.network import Node
from .params import ArkFSParams

__all__ = ["LeaseGrant", "LeaseManager", "LeaseManagerCluster",
           "LeaseRedirect", "LeaseWait", "FencingRegistry",
           "StaleEpochError"]


class StaleEpochError(IOFailure):
    """A journal commit (or lease-derived action) carried a fencing token
    below the highest authority already granted for the directory — the
    issuer has been deposed and its write must not land."""


@dataclass(frozen=True)
class LeaseGrant:
    """A successful acquire/extend."""

    dir_ino: int
    expires_at: float
    epoch: int
    fresh: bool            # True: must (re)load the metatable from storage
    needs_recovery: bool   # True: scan/replay the journal before serving
    mgr_epoch: int = 0     # range-authority epoch (0 = standalone manager)


@dataclass(frozen=True)
class LeaseRedirect:
    """Someone else leads this directory — send them your requests."""

    dir_ino: int
    leader: str            # node name of the current leader
    expires_at: float


@dataclass(frozen=True)
class LeaseWait:
    """Try again later (fencing or recovery in progress)."""

    dir_ino: int
    retry_at: float
    reason: str


@dataclass
class _LeaseState:
    holder: Optional[str] = None
    expires_at: float = 0.0
    epoch: int = 0
    clean: bool = True          # released (or never held) cleanly
    recovering_by: Optional[str] = None
    fence_until: float = 0.0
    seen_epoch: int = 0         # range epoch this state was last valid under
    takeover: bool = False      # next grant must replay the journal


class FencingRegistry:
    """The per-directory fencing-token high-water mark (cluster mode).

    Models the check each journal stream head performs on a commit: pure
    dictionary state, zero simulation events — installing it changes no
    timings. Managers feed it the token of every grant; journal managers
    ask :meth:`admit` before accepting a commit and report every commit
    that actually landed to :meth:`audit_commit`, which is the independent
    no-stale-epoch-commit auditor the crashcheck sweep drains (it keeps
    working even when a seeded bug disables enforcement).
    """

    def __init__(self) -> None:
        #: dir_ino -> highest (mgr_epoch, dir_epoch) ever granted
        self.max_granted: Dict[int, Tuple[int, int]] = {}
        self.rejected = 0
        self.commits = 0
        self.breaches: List[str] = []

    def note_grant(self, dir_ino: int, token: Tuple[int, int]) -> None:
        cur = self.max_granted.get(dir_ino)
        if cur is None or token > cur:
            self.max_granted[dir_ino] = token

    def admit(self, dir_ino: int, token: Tuple[int, int]) -> bool:
        """May a commit stamped ``token`` land? Tokens compare
        lexicographically; anything below the highest grant is a zombie
        write (new grants are only issued after the old lease could no
        longer be honestly believed valid)."""
        cur = self.max_granted.get(dir_ino)
        if cur is not None and token < cur:
            self.rejected += 1
            return False
        return True

    def audit_commit(self, dir_ino: int, token: Tuple[int, int]) -> None:
        self.commits += 1
        cur = self.max_granted.get(dir_ino)
        if cur is not None and token < cur:
            self.breaches.append(
                f"stale-epoch commit applied to dir {dir_ino:x}: "
                f"token={token} < max granted={cur}")

    def drain_breaches(self) -> List[str]:
        out, self.breaches = self.breaches, []
        return out


class LeaseManager:
    """One lease manager service (standalone, or one ring member).

    Runs on ``node``; clients reach it through RPC methods ``lease.acquire``,
    ``lease.release`` and ``lease.recovered``. All handlers are cheap
    ("acquiring/extending a lease is a very lightweight operation").
    """

    def __init__(self, sim: Simulator, node: Node, params: ArkFSParams,
                 cluster: Optional["LeaseManagerCluster"] = None,
                 index: int = 0):
        self.sim = sim
        self.node = node
        self.params = params
        self.cluster = cluster
        self.index = index
        self.leases: Dict[int, _LeaseState] = {}
        # QoS plane (build_arkfs installs it when qos_enabled): when set,
        # handler CPU is a tenant-weighted WFQ and ops are attributed to
        # the requesting client's tenant.
        self.qos = None
        self._boot_time = sim.now
        self._restarted = False  # the startup gate applies only to restarts
        self.stats = {"acquire": 0, "extend": 0, "redirect": 0, "release": 0,
                      "wait": 0, "recovery_grants": 0}
        node.register("lease.acquire", self._h_acquire)
        node.register("lease.release", self._h_release)
        node.register("lease.recovered", self._h_recovered)

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        self.node.crash()

    def restart(self) -> None:
        """Restart with empty state; refuse grants for one lease period."""
        self.node.restart()
        self.leases.clear()
        self._boot_time = self.sim.now
        self._restarted = True

    # -- handlers ------------------------------------------------------------------

    def _work(self, client: Optional[str] = None) -> SimGen:
        qos = self.qos
        if qos is None:
            yield from self.node.work(self.params.lease_op_cpu)
        else:
            cpu = self.params.lease_op_cpu
            yield from self.node.cpu.use_wfq(cpu, qos.tenant_of(client), cpu)

    def _grant(self, dir_ino: int, st: _LeaseState, rs, fresh: bool,
               needs_recovery: bool) -> LeaseGrant:
        me = rs.epoch if rs is not None else 0
        if rs is not None:
            self.cluster.fencing.note_grant(dir_ino, (me, st.epoch))
        return LeaseGrant(dir_ino, st.expires_at, st.epoch, fresh=fresh,
                          needs_recovery=needs_recovery, mgr_epoch=me)

    def _h_acquire(self, dir_ino: int, client: str) -> SimGen:
        yield from self._work(client)
        now = self.sim.now
        rs = None
        if self.cluster is None:
            startup_gate = self._boot_time + self.params.lease_period
            if self._restarted and now < startup_gate:
                # Freshly restarted manager: old leases may still be live.
                self.stats["wait"] += 1
                return LeaseWait(dir_ino, startup_gate, "manager-restarted")
        else:
            rs = self.cluster.range_for(dir_ino)
            if rs.owner != self.index:
                # Deposed (or mis-routed): the client must re-resolve the
                # range owner and retry there.
                self.stats["wait"] += 1
                return LeaseWait(dir_ino,
                                 now + self.params.lease_retry_delay,
                                 "not-range-owner")
            if now < rs.fence_until:
                # Per-range fence after a takeover/restart: leases issued
                # by the previous authority may still be live. Only THIS
                # range waits — the manager's other ranges keep serving.
                self.stats["wait"] += 1
                return LeaseWait(dir_ino, rs.fence_until, "range-fenced")
        st = self.leases.setdefault(dir_ino, _LeaseState())
        if rs is not None and st.seen_epoch < rs.epoch:
            # First touch of this directory under a new range epoch: lease
            # state predating the takeover is void (the range fence already
            # let its holders lapse), and the new authority must replay the
            # journal before serving — unless the range never failed over
            # (epoch 1), in which case this is just a brand-new state.
            st.holder = None
            st.expires_at = 0.0
            st.clean = True
            st.recovering_by = None
            st.fence_until = 0.0
            st.takeover = rs.epoch > 1
            st.seen_epoch = rs.epoch

        if st.recovering_by is not None:
            if st.recovering_by == client:
                # The recovering leader re-extends its claim.
                st.expires_at = now + self.params.lease_period
                return self._grant(dir_ino, st, rs, fresh=False,
                                   needs_recovery=True)
            if st.expires_at <= now:
                # The recovering leader's own lease lapsed: it crashed
                # mid-replay. Void the claim and fall through to the
                # expired-holder path below, which fences out its file
                # leases and hands recovery to the next acquirer (replay
                # is idempotent). Without this, a recoverer dying between
                # its grant and ``lease.recovered`` wedges the directory
                # forever behind a wait deadline that is already past.
                st.recovering_by = None
            else:
                self.stats["wait"] += 1
                return LeaseWait(dir_ino, st.expires_at,
                                 "recovery-in-progress")

        if st.holder is not None and st.expires_at > now:
            if st.holder == client:
                # Extension: metatable remains valid.
                st.expires_at = now + self.params.lease_period
                self.stats["extend"] += 1
                return self._grant(dir_ino, st, rs, fresh=False,
                                   needs_recovery=False)
            self.stats["redirect"] += 1
            return LeaseRedirect(dir_ino, st.holder, st.expires_at)

        # Lease is free or expired.
        crashed = st.holder is not None and not st.clean
        if crashed:
            fence = st.expires_at + self.params.lease_period
            if now < fence:
                # Fencing: let the dead leader's file read/write leases lapse.
                self.stats["wait"] += 1
                return LeaseWait(dir_ino, fence, "fencing-crashed-leader")
        needs_recovery = crashed or st.takeover
        st.takeover = False
        st.holder = client
        st.epoch += 1
        st.expires_at = now + self.params.lease_period
        st.clean = False  # held; only a release makes it clean again
        self.stats["acquire"] += 1
        if needs_recovery:
            st.recovering_by = client
            self.stats["recovery_grants"] += 1
            return self._grant(dir_ino, st, rs, fresh=True,
                               needs_recovery=True)
        # A lapsed-but-cleanly-flushed previous holder still reloads: its
        # in-memory metatable "might be out-of-date" (Section III-B) —
        # unless it never lost the lease (extension handled above).
        return self._grant(dir_ino, st, rs, fresh=True, needs_recovery=False)

    def _h_release(self, dir_ino: int, client: str, clean: bool) -> SimGen:
        yield from self._work(client)
        if (self.cluster is not None
                and self.cluster.range_for(dir_ino).owner != self.index):
            return False  # deposed: this manager's state for the dir is void
        st = self.leases.get(dir_ino)
        if st is None or st.holder != client:
            return False
        st.holder = None if clean else st.holder
        st.clean = clean
        st.expires_at = self.sim.now if clean else st.expires_at
        st.recovering_by = None
        self.stats["release"] += 1
        return True

    def _h_recovered(self, dir_ino: int, client: str) -> SimGen:
        """The recovering leader finished journal replay; renew its lease."""
        yield from self._work(client)
        if (self.cluster is not None
                and self.cluster.range_for(dir_ino).owner != self.index):
            return False
        st = self.leases.get(dir_ino)
        if st is None or st.recovering_by != client:
            return False
        st.recovering_by = None
        st.clean = False
        st.holder = client
        st.expires_at = self.sim.now + self.params.lease_period
        return True

    # -- introspection (tests) ---------------------------------------------------

    def holder_of(self, dir_ino: int) -> Optional[str]:
        st = self.leases.get(dir_ino)
        if st is None or st.expires_at <= self.sim.now:
            return None
        return st.holder

    # -- routing interface (shared with LeaseManagerCluster) ------------------

    def node_for(self, dir_ino: int) -> Node:
        return self.node


@dataclass
class _RangeState:
    """Authority state of one ring slot of the cluster's hash space."""

    index: int              # ring slot == home manager index
    owner: int              # manager currently serving the range
    epoch: int = 1          # monotonic authority epoch — never reused
    fence_until: float = 0.0


class LeaseManagerCluster:
    """Distributed lease coordination — the paper's stated future work.

    "A single lease manager may become a performance bottleneck in certain
    situations and it would be beneficial to implement distributed
    coordination using a cluster of lease managers. We leave this as future
    work." (Section III-B.)

    Directories are hash-partitioned across N independent managers; a
    directory's lease state lives at exactly one manager, so no agreement
    protocol between managers is needed — each inherits the single-manager
    semantics (FCFS, fencing, recovery coordination) for its range. Range
    authority is epoch-fenced: failover/restart bumps the range epoch and
    fences only that range for one lease period (not the whole cluster),
    and every grant carries a ``(range epoch, directory epoch)`` token the
    journal layer checks commits against (:class:`FencingRegistry`).
    """

    def __init__(self, sim: Simulator, nodes, params: ArkFSParams):
        if not nodes:
            raise ValueError("need at least one manager node")
        self.sim = sim
        self.params = params
        self.fencing = FencingRegistry()
        self.managers = [LeaseManager(sim, node, params, cluster=self,
                                      index=i)
                         for i, node in enumerate(nodes)]
        self.ranges = [_RangeState(index=i, owner=i)
                       for i in range(len(nodes))]
        self._down: set = set()

    # -- routing ---------------------------------------------------------------

    def range_index(self, dir_ino: int) -> int:
        h = zlib.crc32(f"{dir_ino:032x}".encode())
        return h % len(self.managers)

    def range_for(self, dir_ino: int) -> _RangeState:
        return self.ranges[self.range_index(dir_ino)]

    def shard_of(self, dir_ino: int) -> LeaseManager:
        return self.managers[self.range_for(dir_ino).owner]

    def node_for(self, dir_ino: int) -> Node:
        return self.shard_of(dir_ino).node

    def holder_of(self, dir_ino: int) -> Optional[str]:
        return self.shard_of(dir_ino).holder_of(dir_ino)

    def epoch_of(self, dir_ino: int) -> int:
        return self.range_for(dir_ino).epoch

    # -- failover --------------------------------------------------------------

    def _successor(self, idx: int) -> int:
        """First live manager scanning the ring from ``idx + 1``, wrapping
        all the way around to ``idx`` itself — when the dead owner's ring
        predecessors are all down too, the range's live home index (or even
        a lone surviving owner, at a bumped epoch) is still a valid heir."""
        n = len(self.managers)
        for k in range(1, n + 1):
            j = (idx + k) % n
            if j not in self._down:
                return j
        raise ValueError("no live successor manager")

    def fail_over(self, range_index: int) -> int:
        """Hand range ``range_index`` to the ring successor at epoch + 1.

        The new owner serves the range only after a per-range fence window
        of one lease period, by which time every lease the old authority
        granted has lapsed; the first acquire of each directory under the
        new epoch is a recovery grant (journal replay). Returns the new
        owner's index."""
        rs = self.ranges[range_index]
        succ = self._successor(rs.owner if rs.owner not in self._down
                               else range_index)
        rs.epoch += 1
        rs.owner = succ
        rs.fence_until = self.sim.now + self.params.lease_period
        return succ

    def crash_manager(self, idx: int) -> None:
        """Crash one manager node and fail over every range it served."""
        self._down.add(idx)
        self.managers[idx].node.crash()
        for rs in self.ranges:
            if rs.owner == idx:
                self.fail_over(rs.index)

    def restart_manager(self, idx: int) -> None:
        """Restart a manager; it reclaims its home range at a new epoch.

        Only the reclaimed range is fenced (for one lease period) — the
        cluster's other ranges keep serving throughout, which is the
        per-range scoping of the old global restart refusal."""
        m = self.managers[idx]
        if idx in self._down:
            m.node.restart()
            self._down.discard(idx)
        m.leases.clear()
        m._boot_time = self.sim.now
        rs = self.ranges[idx]
        rs.epoch += 1
        rs.owner = idx
        rs.fence_until = self.sim.now + self.params.lease_period

    def crash(self) -> None:
        for i, m in enumerate(self.managers):
            self._down.add(i)
            m.crash()

    def restart(self) -> None:
        for i in range(len(self.managers)):
            self.restart_manager(i)

    @property
    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.managers:
            for k, v in m.stats.items():
                out[k] = out.get(k, 0) + v
        return out
