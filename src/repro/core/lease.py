"""Directory lease management (Section III-B).

A single lease manager issues per-directory leases first-come-first-served.
The holder of a directory's lease (its *directory leader*) is the only party
allowed to modify that directory's metadata; other clients are redirected to
the leader. Re-acquisition by the same leader before expiry is an
*extension* — the leader's metatable stays valid and need not be reloaded.

Fault handling (Section III-E):

* If a lease expires without a clean release, the next grant carries
  ``needs_recovery`` and is *fenced*: the manager makes requesters wait one
  full lease period past the expiry so read/write leases issued by the dead
  leader have lapsed, then lets the new leader replay the journal; other
  clients wait until the new leader reports recovery complete.
* If the manager itself crashes, a restart refuses all grants for one lease
  period (so no two clients can ever believe they lead the same directory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.engine import SimGen, Simulator
from ..sim.network import Node
from .params import ArkFSParams

__all__ = ["LeaseGrant", "LeaseManager", "LeaseRedirect", "LeaseWait"]


@dataclass(frozen=True)
class LeaseGrant:
    """A successful acquire/extend."""

    dir_ino: int
    expires_at: float
    epoch: int
    fresh: bool            # True: must (re)load the metatable from storage
    needs_recovery: bool   # True: scan/replay the journal before serving


@dataclass(frozen=True)
class LeaseRedirect:
    """Someone else leads this directory — send them your requests."""

    dir_ino: int
    leader: str            # node name of the current leader
    expires_at: float


@dataclass(frozen=True)
class LeaseWait:
    """Try again later (fencing or recovery in progress)."""

    dir_ino: int
    retry_at: float
    reason: str


@dataclass
class _LeaseState:
    holder: Optional[str] = None
    expires_at: float = 0.0
    epoch: int = 0
    clean: bool = True          # released (or never held) cleanly
    recovering_by: Optional[str] = None
    fence_until: float = 0.0


class LeaseManager:
    """The cluster's (single) lease manager service.

    Runs on ``node``; clients reach it through RPC methods ``lease.acquire``,
    ``lease.release`` and ``lease.recovered``. All handlers are cheap
    ("acquiring/extending a lease is a very lightweight operation").
    """

    def __init__(self, sim: Simulator, node: Node, params: ArkFSParams):
        self.sim = sim
        self.node = node
        self.params = params
        self.leases: Dict[int, _LeaseState] = {}
        self._boot_time = sim.now
        self._restarted = False  # the startup gate applies only to restarts
        self.stats = {"acquire": 0, "extend": 0, "redirect": 0, "release": 0,
                      "wait": 0, "recovery_grants": 0}
        node.register("lease.acquire", self._h_acquire)
        node.register("lease.release", self._h_release)
        node.register("lease.recovered", self._h_recovered)

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        self.node.crash()

    def restart(self) -> None:
        """Restart with empty state; refuse grants for one lease period."""
        self.node.restart()
        self.leases.clear()
        self._boot_time = self.sim.now
        self._restarted = True

    # -- handlers ------------------------------------------------------------------

    def _work(self) -> SimGen:
        yield from self.node.work(self.params.lease_op_cpu)

    def _h_acquire(self, dir_ino: int, client: str) -> SimGen:
        yield from self._work()
        now = self.sim.now
        startup_gate = self._boot_time + self.params.lease_period
        if self._restarted and now < startup_gate:
            # Freshly restarted manager: old leases may still be live.
            self.stats["wait"] += 1
            return LeaseWait(dir_ino, startup_gate, "manager-restarted")
        st = self.leases.setdefault(dir_ino, _LeaseState())

        if st.recovering_by is not None:
            if st.recovering_by == client:
                # The recovering leader re-extends its claim.
                st.expires_at = now + self.params.lease_period
                return LeaseGrant(dir_ino, st.expires_at, st.epoch,
                                  fresh=False, needs_recovery=True)
            self.stats["wait"] += 1
            return LeaseWait(dir_ino, st.expires_at, "recovery-in-progress")

        if st.holder is not None and st.expires_at > now:
            if st.holder == client:
                # Extension: metatable remains valid.
                st.expires_at = now + self.params.lease_period
                self.stats["extend"] += 1
                return LeaseGrant(dir_ino, st.expires_at, st.epoch,
                                  fresh=False, needs_recovery=False)
            self.stats["redirect"] += 1
            return LeaseRedirect(dir_ino, st.holder, st.expires_at)

        # Lease is free or expired.
        crashed = st.holder is not None and not st.clean
        if crashed:
            fence = st.expires_at + self.params.lease_period
            if now < fence:
                # Fencing: let the dead leader's file read/write leases lapse.
                self.stats["wait"] += 1
                return LeaseWait(dir_ino, fence, "fencing-crashed-leader")

        same_leader_continuation = (
            st.holder == client and st.clean and st.expires_at > 0
        )
        st.holder = client
        st.epoch += 1
        st.expires_at = now + self.params.lease_period
        st.clean = False  # held; only a release makes it clean again
        self.stats["acquire"] += 1
        if crashed:
            st.recovering_by = client
            self.stats["recovery_grants"] += 1
            return LeaseGrant(dir_ino, st.expires_at, st.epoch, fresh=True,
                              needs_recovery=True)
        # A lapsed-but-cleanly-flushed previous holder still reloads: its
        # in-memory metatable "might be out-of-date" (Section III-B) —
        # unless it never lost the lease (extension handled above).
        del same_leader_continuation
        return LeaseGrant(dir_ino, st.expires_at, st.epoch, fresh=True,
                          needs_recovery=False)

    def _h_release(self, dir_ino: int, client: str, clean: bool) -> SimGen:
        yield from self._work()
        st = self.leases.get(dir_ino)
        if st is None or st.holder != client:
            return False
        st.holder = None if clean else st.holder
        st.clean = clean
        st.expires_at = self.sim.now if clean else st.expires_at
        st.recovering_by = None
        self.stats["release"] += 1
        return True

    def _h_recovered(self, dir_ino: int, client: str) -> SimGen:
        """The recovering leader finished journal replay; renew its lease."""
        yield from self._work()
        st = self.leases.get(dir_ino)
        if st is None or st.recovering_by != client:
            return False
        st.recovering_by = None
        st.clean = False
        st.holder = client
        st.expires_at = self.sim.now + self.params.lease_period
        return True

    # -- introspection (tests) ---------------------------------------------------

    def holder_of(self, dir_ino: int) -> Optional[str]:
        st = self.leases.get(dir_ino)
        if st is None or st.expires_at <= self.sim.now:
            return None
        return st.holder

    # -- routing interface (shared with LeaseManagerCluster) ------------------

    def node_for(self, dir_ino: int) -> Node:
        return self.node


class LeaseManagerCluster:
    """Distributed lease coordination — the paper's stated future work.

    "A single lease manager may become a performance bottleneck in certain
    situations and it would be beneficial to implement distributed
    coordination using a cluster of lease managers. We leave this as future
    work." (Section III-B.)

    Directories are hash-partitioned across N independent managers; a
    directory's lease state lives at exactly one manager, so no agreement
    protocol between managers is needed — each inherits the single-manager
    semantics (FCFS, fencing, recovery coordination) for its shard.
    """

    def __init__(self, sim: Simulator, nodes, params: ArkFSParams):
        if not nodes:
            raise ValueError("need at least one manager node")
        self.sim = sim
        self.params = params
        self.managers = [LeaseManager(sim, node, params) for node in nodes]

    def shard_of(self, dir_ino: int) -> LeaseManager:
        import zlib

        h = zlib.crc32(f"{dir_ino:032x}".encode())
        return self.managers[h % len(self.managers)]

    def node_for(self, dir_ino: int) -> Node:
        return self.shard_of(dir_ino).node

    def holder_of(self, dir_ino: int) -> Optional[str]:
        return self.shard_of(dir_ino).holder_of(dir_ino)

    def crash(self) -> None:
        for m in self.managers:
            m.crash()

    def restart(self) -> None:
        for m in self.managers:
            m.restart()

    @property
    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.managers:
            for k, v in m.stats.items():
                out[k] = out.get(k, 0) + v
        return out
