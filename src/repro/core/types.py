"""ArkFS on-storage metadata types: inodes and directory entries.

ArkFS uses 128-bit UUIDs as inode numbers (Section III-F); the root
directory's inode number is fixed so every client can start path resolution
without a bootstrap lookup. Both types serialize to compact JSON — the
object values PRT stores under ``i``/``e`` keys.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..posix.acl import Acl
from ..posix.types import FileType, StatResult

__all__ = ["ROOT_INO", "InoAllocator", "Inode", "Dentry", "PackExtent",
           "ino_hex"]

#: Fixed inode number of the root directory (UUID value 1).
ROOT_INO = 1

_INO_BITS = 128


def ino_hex(ino: int) -> str:
    """Canonical fixed-width hex form used inside object keys."""
    return f"{ino:032x}"


class InoAllocator:
    """Deterministic 128-bit UUID allocator (seeded for reproducible runs)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._seen = {ROOT_INO}

    def new(self) -> int:
        while True:
            ino = self._rng.getrandbits(_INO_BITS)
            if ino not in self._seen and ino != 0:
                self._seen.add(ino)
                return ino


class PackExtent(NamedTuple):
    """Where one packed chunk lives inside a sealed container object.

    The extent index object ``x<file-uuid>`` maps chunk index →
    ``[pack_id, offset, length]``; the container itself is ``p<pack_id>``.
    """

    pack: str
    offset: int
    length: int


@dataclass
class Inode:
    """An ArkFS inode; stored as the object ``i<uuid>``.

    ``mode`` holds only the nine permission bits (plus setuid/setgid/sticky);
    the file type lives in ``ftype``. ``acl`` is set only when extended
    entries exist.
    """

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    size: int = 0
    nlink: int = 1
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    acl: Optional[Acl] = None
    symlink_target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ftype is FileType.DIRECTORY and self.nlink == 1:
            self.nlink = 2  # "." and the parent's entry

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.ftype is FileType.REGULAR

    @property
    def is_symlink(self) -> bool:
        return self.ftype is FileType.SYMLINK

    def stat(self) -> StatResult:
        mode_bits = self.acl.to_mode_bits() if self.acl else (self.mode & 0o777)
        mode_bits |= self.mode & 0o7000  # keep setuid/setgid/sticky
        return StatResult(
            st_ino=self.ino,
            st_mode=self.ftype.mode_bits | mode_bits,
            st_nlink=self.nlink,
            st_uid=self.uid,
            st_gid=self.gid,
            st_size=self.size,
            st_atime=self.atime,
            st_mtime=self.mtime,
            st_ctime=self.ctime,
        )

    def copy(self) -> "Inode":
        return Inode(
            ino=self.ino, ftype=self.ftype, mode=self.mode, uid=self.uid,
            gid=self.gid, size=self.size, nlink=self.nlink, atime=self.atime,
            mtime=self.mtime, ctime=self.ctime,
            acl=self.acl.copy() if self.acl else None,
            symlink_target=self.symlink_target,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        d = {
            "ino": ino_hex(self.ino),
            "t": self.ftype.value,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "size": self.size,
            "nlink": self.nlink,
            "at": self.atime,
            "mt": self.mtime,
            "ct": self.ctime,
        }
        if self.acl is not None:
            d["acl"] = self.acl.to_dict()
        if self.symlink_target is not None:
            d["tgt"] = self.symlink_target
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Inode":
        return cls(
            ino=int(d["ino"], 16),
            ftype=FileType(d["t"]),
            mode=d["mode"],
            uid=d["uid"],
            gid=d["gid"],
            size=d["size"],
            nlink=d["nlink"],
            atime=d["at"],
            mtime=d["mt"],
            ctime=d["ct"],
            acl=Acl.from_dict(d["acl"]) if "acl" in d else None,
            symlink_target=d.get("tgt"),
        )

    def to_bytes(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Inode":
        return cls.from_dict(json.loads(raw))


@dataclass(frozen=True)
class Dentry:
    """A directory entry; stored as the object ``e<dir-uuid>/<name>``."""

    name: str
    ino: int
    ftype: FileType

    def to_dict(self) -> dict:
        return {"n": self.name, "ino": ino_hex(self.ino), "t": self.ftype.value}

    @classmethod
    def from_dict(cls, d: dict) -> "Dentry":
        return cls(name=d["n"], ino=int(d["ino"], 16), ftype=FileType(d["t"]))

    def to_bytes(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Dentry":
        return cls.from_dict(json.loads(raw))
