"""Crash recovery (Section III-E).

When a client acquires a directory's lease and finds transactions still in
the per-directory journal, the previous leader crashed before checkpointing.
The new leader replays the journal in sequence order:

* ``update`` transactions are applied unconditionally (they were committed —
  i.e. durable — before the crash; application is idempotent),
* ``prepare`` transactions (2PC rename participants) are resolved against
  their decision record: if the coordinator managed to create a "commit"
  decision the ops are applied; otherwise the recovering leader *writes an
  abort decision itself* with an atomic exclusive create, so a coordinator
  racing with recovery can never flip the outcome afterwards.

Journal objects are deleted as they are resolved, leaving the directory
clean for the new leader's metatable load.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..objectstore.errors import NoSuchKey
from ..sim.engine import SimGen
from ..sim.network import Node
from .journal import Transaction, apply_ops
from .prt import PRT

__all__ = ["scan_journal", "resolve_decision", "recover_directory",
           "roll_forward_split"]

DECISION_COMMIT = b"commit"
DECISION_ABORT = b"abort"


def scan_journal(prt: PRT, dir_ino: int,
                 src: Optional[Node] = None) -> SimGen:
    """Read every committed transaction of a directory, in seq order.

    Returns ``[(seq, Transaction), ...]``. Unparseable (torn) journal
    objects are skipped: an interrupted journal PUT never made its
    transaction durable in the first place.
    """
    prefix = prt.key_journal_prefix(dir_ino)
    keys = yield from prt.store.list(prefix, src=src)
    txns: List[Tuple[int, Transaction]] = []
    for key in keys:  # keys sort by zero-padded seq
        seq = int(key[len(prefix):])
        try:
            raw = yield from prt.store.get(key, src=src)
            txns.append((seq, Transaction.from_bytes(raw, seq=seq)))
        except (NoSuchKey, ValueError, KeyError):
            continue
    return txns


def resolve_decision(prt: PRT, decision_key: str,
                     src: Optional[Node] = None) -> SimGen:
    """Determine a prepared transaction's fate; forces "abort" if undecided."""
    try:
        value = yield from prt.store.get(decision_key, src=src)
        return value == DECISION_COMMIT
    except NoSuchKey:
        pass
    won = yield from prt.store.put_if_absent(decision_key, DECISION_ABORT,
                                             src=src)
    if won:
        return False
    value = yield from prt.store.get(decision_key, src=src)
    return value == DECISION_COMMIT


def recover_directory(prt: PRT, dir_ino: int,
                      src: Optional[Node] = None) -> SimGen:
    """Bring a crashed directory up to date; returns counts for telemetry.

    Idempotent: re-running (e.g. the recovering leader itself crashes
    mid-replay) converges to the same state, because ops carry full state
    and decision records are immutable once created.
    """
    txns = yield from scan_journal(prt, dir_ino, src=src)
    replayed = aborted = 0
    for seq, txn in txns:
        if txn.kind == "update":
            yield from apply_ops(prt, txn.ops, src=src)
            replayed += 1
        elif txn.kind == "prepare":
            commit = yield from resolve_decision(prt, txn.decision_key, src=src)
            if commit:
                yield from apply_ops(prt, txn.ops, src=src)
                replayed += 1
            else:
                aborted += 1
        try:
            yield from prt.store.delete(prt.key_journal(dir_ino, seq), src=src)
        except NoSuchKey:
            pass
    return {"replayed": replayed, "aborted": aborted, "scanned": len(txns)}


def roll_forward_split(prt: PRT, smap, src: Optional[Node] = None) -> SimGen:
    """Complete an interrupted directory split (idempotent roll-forward).

    Called by whoever next wins the parent directory's lease and finds the
    shard map still in state ``"splitting"``: the parent range is frozen
    (the splitting map is written only after the parent's journal is fully
    checkpointed and new operations are fenced off), so copying every
    parent-range dentry to its hash-routed shard range, deleting the
    parent-range originals, and PUTting the map in state ``"active"`` is
    safe to re-run from any crash point. The activation PUT is the atomic
    commit point. Returns the active map.
    """
    dentries = yield from prt.list_dentries(smap.dir_ino, src=src)
    for d in dentries:
        yield from prt.put_dentry(smap.route(d.name), d, src=src)
    for d in dentries:
        yield from prt.delete_dentry(smap.dir_ino, d.name, src=src)
    active = smap.with_state(smap.ACTIVE)
    yield from prt.put_shard_map(active, src=src)
    return active
