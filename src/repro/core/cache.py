"""The user-level data object cache (Section III-D).

Serves the role of the kernel page cache for ArkFS: 2 MB cache entries
(matching the PRT data-object size) indexed by a radix tree, write-back for
dirty data, and an adaptive read-ahead window per open file that doubles on
sequential reads up to ``max_readahead`` (8 MB by default, as in CephFS) —
and jumps straight to the maximum when a file is read from offset 0.

The same class backs the baseline file systems' client caches (kernel page
cache for CephFS mounts, goofys' stream read-ahead) with different
parameters, so bandwidth comparisons exercise one code path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..obs import Observability
from ..obs.trace import span as _span
from ..sim.engine import Event, SimGen, Simulator
from ..sim.network import Node
from .prt import PRT
from .radix import RadixTree
from .retry import RetryPolicy

__all__ = ["CacheEntry", "ReadAheadState", "DataObjectCache"]


class CacheEntry:
    """One cached data object (at most ``entry_size`` bytes).

    ``data`` is a capacity buffer and ``size`` the count of valid bytes in
    it: growing a multi-megabyte bytearray 128 KiB at a time forces a
    realloc+copy on nearly every extension once many entries are live
    (in-place realloc almost never succeeds with interleaved writers), so
    the buffer instead grows geometrically and writes land as equal-length
    slice assignments. Bytes past ``size`` are never observable — reads and
    writebacks clip at ``size`` and extension gaps are re-zeroed."""

    __slots__ = ("index", "data", "size", "dirty", "loading", "backed")

    def __init__(self, index: int):
        self.index = index
        self.data = bytearray()
        self.size = 0
        self.dirty = False
        self.loading: Optional[Event] = None  # set while a fetch is in flight
        self.backed = False  # a plain ``d`` object exists for this chunk
                             # (the pack layer must purge it after a seal)

    @property
    def ready(self) -> bool:
        return self.loading is None


@dataclass
class ReadAheadState:
    """Per-open-file read-ahead bookkeeping ("each file has a read-ahead
    window")."""

    window: int = 0              # current window in bytes
    next_offset: int = -1        # expected offset of the next sequential read
    started: bool = False

    def on_read(self, offset: int, size: int, entry_size: int,
                max_readahead: int) -> None:
        if not self.started and offset == 0:
            # Read from the very beginning: expect a full sequential pass,
            # open the window to the maximum immediately.
            self.window = max_readahead
        elif offset == self.next_offset:
            self.window = min(max(self.window * 2, entry_size), max_readahead)
        else:
            self.window = entry_size  # random access: shrink back
        self.started = True
        self.next_offset = offset + size


class _FileCache:
    __slots__ = ("ino", "tree", "version")

    def __init__(self, ino: int):
        self.ino = ino
        self.tree = RadixTree()
        self.version = 0


class DataObjectCache:
    """Write-back object cache with read-ahead, shared by one client."""

    def __init__(self, sim: Simulator, prt: PRT, node: Optional[Node],
                 entry_size: int, capacity_bytes: int, max_readahead: int,
                 copy_bw: float = 8e9, writeback_parallel: int = 8,
                 fetch_parallel: int = 16, retry: Optional[RetryPolicy] = None,
                 pack=None):
        if entry_size != prt.data_object_size:
            raise ValueError("cache entry size must equal the PRT object size")
        self.sim = sim
        self.prt = prt
        self.node = node
        self._retry = retry or RetryPolicy(sim)
        # Optional PackWriter: sub-threshold writebacks append to a shared
        # container instead of issuing their own PUT. None keeps every code
        # path structurally identical to a build without the pack subsystem.
        self._pack = pack
        self.entry_size = entry_size
        self.capacity = max(1, capacity_bytes // entry_size)
        self.max_readahead = max_readahead
        self.copy_bw = copy_bw
        # Dirty entries are written back by this many concurrent "flusher
        # threads" (pdflush-style) — serializing PUTs here would wrongly
        # throttle sequential write bandwidth to one object per RTT.
        self.writeback_parallel = max(1, writeback_parallel)
        # A demand read scatters this many concurrent GETs for the entries
        # it misses (1 = the serial ablation: one object-store RTT each).
        self.fetch_parallel = max(1, fetch_parallel)
        self._files: Dict[int, _FileCache] = {}
        self._lru: "OrderedDict[Tuple[int, int], CacheEntry]" = OrderedDict()
        self._reserved = 0        # cache slots claimed by scheduled prefetches
        # Metrics live in the sim-wide registry, namespaced per client so
        # multiple caches in one simulation don't merge; the objects are
        # pre-bound here so a count on the hot path is one attribute bump.
        obs = Observability.of(sim)
        label = node.name if node is not None else f"anon{id(self):x}"
        m = obs.metrics.scope(label + ".cache")
        self._c_hits = m.counter("hits")
        self._c_misses = m.counter("misses")
        self._c_prefetches = m.counter("prefetches")
        self._c_flushes = m.counter("flushes")
        self._c_evictions = m.counter("evictions")
        # fan-out observability: batched vs serial object ops, high-water
        # in-flight counts, and batch sizes
        self._c_batched_gets = m.counter("batched_gets")
        self._c_serial_gets = m.counter("serial_gets")
        self._c_batched_puts = m.counter("batched_puts")
        self._c_serial_puts = m.counter("serial_puts")
        self._c_fetch_batches = m.counter("fetch_batches")
        self._c_wb_batches = m.counter("wb_batches")
        self._g_fetch_batch = m.gauge("fetch_batch")
        self._g_wb_batch = m.gauge("wb_batch")
        self._g_inflight_gets = m.gauge("inflight_gets")
        self._g_inflight_puts = m.gauge("inflight_puts")

    @property
    def stats(self) -> Dict[str, int]:
        """Legacy snapshot of this cache's counters (deprecated shim).

        Previously a live dict mutated in place; the keys and meanings are
        unchanged, but the returned dict is now a point-in-time copy backed
        by the metrics registry."""
        return {
            "hits": self._c_hits.value,
            "misses": self._c_misses.value,
            "prefetches": self._c_prefetches.value,
            "flushes": self._c_flushes.value,
            "evictions": self._c_evictions.value,
            "batched_gets": self._c_batched_gets.value,
            "serial_gets": self._c_serial_gets.value,
            "batched_puts": self._c_batched_puts.value,
            "serial_puts": self._c_serial_puts.value,
            "fetch_batches": self._c_fetch_batches.value,
            "wb_batches": self._c_wb_batches.value,
            "max_fetch_batch": self._g_fetch_batch.max_value,
            "max_wb_batch": self._g_wb_batch.max_value,
            "max_inflight_gets": self._g_inflight_gets.max_value,
            "max_inflight_puts": self._g_inflight_puts.max_value,
        }

    # -- internals -------------------------------------------------------------

    def _wait(self, ev: Event) -> SimGen:
        """Wait on an in-flight fetch, attributed as queueing when traced."""
        tr = self.sim._tracer
        if tr is not None:
            with tr.span("cache.wait", "queue"):
                yield ev
        else:
            yield ev

    def _file(self, ino: int) -> _FileCache:
        fc = self._files.get(ino)
        if fc is None:
            fc = _FileCache(ino)
            self._files[ino] = fc
        return fc

    def _touch(self, ino: int, entry: CacheEntry) -> None:
        self._lru[(ino, entry.index)] = entry
        self._lru.move_to_end((ino, entry.index))

    def _copy_cost(self, nbytes: int) -> SimGen:
        if self.node is not None and nbytes > 0:
            yield from self.node.work(nbytes / self.copy_bw)
        else:
            yield self.sim.timeout(0)

    def _make_room(self, need: int = 1) -> SimGen:
        need = min(max(1, need), self.capacity)
        while len(self._lru) + need > self.capacity:
            victim_key = None
            dirty_batch = []
            for key, entry in self._lru.items():
                if not entry.ready:
                    continue
                if victim_key is None:
                    victim_key = key
                if entry.dirty and len(dirty_batch) < self.writeback_parallel:
                    dirty_batch.append((key[0], entry))
            if victim_key is None:
                # Everything is mid-fetch; wait for one fetch to land.
                first = next(iter(self._lru.values()))
                yield from self._wait(first.loading)
                continue
            if len(dirty_batch) > 1:
                # Flush a batch of dirty LRU entries concurrently (the
                # flusher-thread pool), so eviction pressure doesn't
                # serialize object PUTs. State may change while we wait, so
                # re-evaluate the victim afterwards.
                yield from self._writeback_batch(dirty_batch)
                continue
            ino, idx = victim_key
            entry = self._lru.pop(victim_key)
            if entry.dirty:
                yield from self._writeback(ino, entry)
            fc = self._files.get(ino)
            if fc is not None:
                fc.tree.delete(idx)
                if not fc.tree:
                    del self._files[ino]
            self._c_evictions.inc()

    def _writeback(self, ino: int, entry: CacheEntry) -> SimGen:
        if not entry.dirty:
            return
        # Clear the flag before the PUT: a write landing mid-flush re-dirties
        # the entry rather than getting silently marked clean.
        entry.dirty = False
        snapshot = bytes(memoryview(entry.data)[:entry.size])
        if self._pack is not None and self._pack.wants(len(snapshot)):
            # Sub-threshold chunk: append into the open container buffer
            # (a memcpy) instead of an individual PUT; durability comes
            # from the seal, which flush/fsync paths force.
            full = self._pack.append(ino, entry.index, snapshot,
                                     had_plain=entry.backed)
            entry.backed = False
            yield from self._copy_cost(len(snapshot))
            if full:
                yield from self._pack.seal()
            return
        self._g_inflight_puts.add(1)
        sp = _span(self.sim, "cache.writeback", "cache")
        try:
            yield from self._retry.call(
                lambda: self.prt.write_object(ino, entry.index, snapshot,
                                              src=self.node))
        except Exception:
            entry.dirty = True
            raise
        finally:
            sp.close()
            self._g_inflight_puts.add(-1)
        entry.backed = True
        if self._pack is not None:
            # The chunk outgrew the threshold: any packed copy is stale now.
            self._pack.note_plain_write(ino, entry.index)
        self._c_flushes.inc()
        rec = self.sim._recorder
        if rec is not None:
            rec.record("cache.writeback", ino=ino, idx=entry.index,
                       bytes=entry.size)

    def _writeback_batch(self, pairs) -> SimGen:
        """Write a batch of dirty ``(ino, entry)`` pairs back concurrently
        (one flusher-pool round)."""
        if not pairs:
            return
        if len(pairs) == 1:
            self._c_serial_puts.inc()
            yield from self._writeback(*pairs[0])
            return
        self._c_wb_batches.inc()
        self._c_batched_puts.inc(len(pairs))
        self._g_wb_batch.track(len(pairs))
        flushes = [
            self.sim.process(self._writeback(ino, e),
                             name=f"wb:{ino:x}:{e.index}")
            for ino, e in pairs
        ]
        yield self.sim.all_of(flushes)

    def _writeback_many(self, pairs) -> SimGen:
        """Scatter dirty entries across the flusher pool,
        ``writeback_parallel`` PUTs at a time — the shared path behind
        ``flush``/``flush_all``/``invalidate``/``drop_all``."""
        for start in range(0, len(pairs), self.writeback_parallel):
            yield from self._writeback_batch(
                pairs[start:start + self.writeback_parallel])

    def _fetch(self, ino: int, index: int) -> SimGen:
        """Install a loading entry and fill it from storage.

        Idempotent under races: if another fetch (demand or read-ahead)
        installed the entry between our admission check and now, join its
        in-flight ``loading`` event instead of issuing a second GET."""
        fc = self._file(ino)
        existing = fc.tree.get(index)
        if existing is not None:
            if existing.loading is not None:
                yield from self._wait(existing.loading)
            return existing
        entry = CacheEntry(index)
        entry.loading = self.sim.event()
        fc.tree.set(index, entry)
        self._touch(ino, entry)
        self._g_inflight_gets.add(1)
        sp = _span(self.sim, "cache.fetch", "cache")
        try:
            backed = False
            data = None
            if self._pack is not None:
                # Packed chunks resolve through the extent index (open
                # buffer, in-flight seal, or a ranged GET on a container).
                data = yield from self._pack.fetch_chunk(ino, index)
            if data is None:
                data = yield from self._retry.call(
                    lambda: self.prt.read_object(ino, index, src=self.node))
                backed = len(data) > 0
        except Exception as exc:
            fc.tree.delete(index)
            self._lru.pop((ino, index), None)
            entry.loading.fail(exc)
            raise
        finally:
            sp.close()
            self._g_inflight_gets.add(-1)
        entry.data = bytearray(data)
        entry.size = len(data)
        entry.backed = backed
        ev, entry.loading = entry.loading, None
        ev.succeed(entry)
        return entry

    def _fetch_missing(self, ino: int, indices) -> SimGen:
        """Scatter phase of a demand read: collect every entry the request
        misses up front and fetch them concurrently, ``fetch_parallel`` GETs
        at a time. Entries another reader or the read-ahead already has in
        flight are skipped — their ``loading`` events are shared during
        assembly, so no GET is ever duplicated."""
        fc = self._file(ino)
        missing = [i for i in indices if fc.tree.get(i) is None]
        if not missing:
            return frozenset()
        self._c_misses.inc(len(missing))
        limit = min(self.fetch_parallel, self.capacity)
        for start in range(0, len(missing), limit):
            batch = missing[start:start + limit]
            # Entries may have appeared (prefetch raced us) while an earlier
            # batch was in flight.
            batch = [i for i in batch if fc.tree.get(i) is None]
            if not batch:
                continue
            yield from self._make_room(len(batch))
            if len(batch) == 1:
                self._c_serial_gets.inc()
                yield from self._fetch(ino, batch[0])
                continue
            self._c_fetch_batches.inc()
            self._c_batched_gets.inc(len(batch))
            self._g_fetch_batch.track(len(batch))
            fetches = [
                self.sim.process(self._fetch(ino, i), name=f"mget:{ino:x}:{i}")
                for i in batch
            ]
            yield self.sim.all_of(fetches)
        return frozenset(missing)

    def _get_entry(self, ino: int, index: int, fetch: bool = True) -> SimGen:
        """Return a ready entry, fetching on miss."""
        fc = self._file(ino)
        entry: Optional[CacheEntry] = fc.tree.get(index)
        if entry is not None:
            if entry.loading is not None:
                yield from self._wait(entry.loading)
            self._c_hits.inc()
            self._touch(ino, entry)
            return entry
        self._c_misses.inc()
        if not fetch:
            # Caller will fully overwrite: a blank entry suffices.
            yield from self._make_room()
            entry = CacheEntry(index)
            fc.tree.set(index, entry)
            self._touch(ino, entry)
            return entry
        yield from self._make_room()
        self._c_serial_gets.inc()
        entry = yield from self._fetch(ino, index)
        return entry

    # -- public API -----------------------------------------------------------------

    def read(self, ino: int, offset: int, length: int,
             ra: Optional[ReadAheadState] = None) -> SimGen:
        """Read through the cache. ``length`` must already be EOF-clipped.

        Scatter-gather: asynchronous prefetches are issued for the
        read-ahead window, then every entry the request itself misses is
        fetched concurrently (``fetch_parallel`` GETs at a time) before the
        result is assembled — a cold multi-object read pays ~one
        object-store round trip, not one per entry.
        """
        if length <= 0:
            yield self.sim.timeout(0)
            return b""
        sp = _span(self.sim, "cache.read", "cache")
        try:
            if ra is not None:
                ra.on_read(offset, length, self.entry_size, self.max_readahead)
                # Kick prefetches for the window beyond this read. Slots are
                # reserved as prefetches are scheduled (``_reserved``), so a
                # burst of read-ahead cannot overshoot the cache capacity
                # before its processes have installed their entries.
                end_idx = (offset + length - 1) // self.entry_size
                ra_end = offset + length + ra.window
                ra_last_idx = (ra_end - 1) // self.entry_size
                fc = self._file(ino)
                budget = self.capacity - len(self._lru) - self._reserved
                for idx in range(end_idx + 1, ra_last_idx + 1):
                    if budget <= 0:
                        break
                    if fc.tree.get(idx) is None:
                        budget -= 1
                        self._reserved += 1
                        self._c_prefetches.inc()
                        self.sim.process(self._prefetch_one(ino, idx),
                                         name=f"ra:{ino:x}:{idx}")
            pieces = self.prt.chunk_range(offset, length)
            fetched = yield from self._fetch_missing(
                ino, [p[0] for p in pieces])
            out = bytearray()
            fc = self._file(ino)
            for idx, off, n in pieces:
                entry = fc.tree.get(idx)
                if entry is None:
                    # Evicted between the scatter phase and assembly (only
                    # possible when the request is larger than the cache).
                    yield from self._make_room()
                    self._c_misses.inc()
                    self._c_serial_gets.inc()
                    entry = yield from self._fetch(ino, idx)
                elif entry.loading is not None:
                    yield from self._wait(entry.loading)
                    if idx not in fetched:
                        self._c_hits.inc()
                elif idx not in fetched:
                    self._c_hits.inc()
                self._touch(ino, entry)
                avail = entry.size - off
                if avail >= n:
                    out += memoryview(entry.data)[off : off + n]
                else:
                    if avail > 0:
                        out += memoryview(entry.data)[off : off + avail]
                    out += b"\x00" * (n - max(avail, 0))
            yield from self._copy_cost(length)
        finally:
            sp.close()
        return bytes(out)

    def _prefetch_one(self, ino: int, index: int) -> SimGen:
        try:
            fc = self._file(ino)
            if fc.tree.get(index) is not None:
                return
            if len(self._lru) >= self.capacity:
                return  # demand traffic claimed the slot; drop the prefetch
            yield from self._fetch(ino, index)
        except Exception:
            pass  # prefetch failures surface on the demand read
        finally:
            self._reserved -= 1

    def write(self, ino: int, offset: int, data: bytes,
              old_size: int) -> SimGen:
        """Write-back write. ``old_size`` is the file size before this write
        (to decide whether a partial entry needs read-modify-write)."""
        sp = _span(self.sim, "cache.write", "cache")
        try:
            pos = 0
            for idx, off, n in self.prt.chunk_range(offset, len(data)):
                piece = data[pos : pos + n]
                pos += n
                entry_base = idx * self.entry_size
                covers_existing = off == 0 and entry_base + n >= min(
                    old_size, entry_base + self.entry_size
                )
                entry = yield from self._get_entry(
                    ino, idx,
                    fetch=not covers_existing and entry_base < old_size
                )
                d = entry.data
                end = off + n
                if len(d) < end:
                    # Grow capacity geometrically (clipped to the entry's
                    # natural size) so a sequential fill costs O(1) reallocs
                    # amortized instead of one realloc+copy per write.
                    cap = min(max(end, 2 * len(d)), max(end, self.entry_size))
                    d += bytes(cap - len(d))
                if entry.size < off:
                    # Zero any stale capacity bytes in the gap so they can't
                    # leak into reads once ``size`` moves past them.
                    d[entry.size:off] = bytes(off - entry.size)
                d[off:end] = piece
                if entry.size < end:
                    entry.size = end
                entry.dirty = True
            yield from self._copy_cost(len(data))
        finally:
            sp.close()

    def _collect_dirty(self, inos) -> SimGen:
        """Quiesce in-flight fetches for the given files and return their
        dirty ``(ino, entry)`` pairs, ready for a batched writeback."""
        pairs = []
        for ino in inos:
            fc = self._files.get(ino)
            if fc is None:
                continue
            for _idx, entry in list(fc.tree.items()):
                if entry.loading is not None:
                    yield from self._wait(entry.loading)
                if entry.dirty:
                    pairs.append((ino, entry))
        return pairs

    def flush(self, ino: int) -> SimGen:
        """Write every dirty entry of a file back to object storage,
        ``writeback_parallel`` PUTs at a time."""
        yield from self.flush_many([ino])

    def flush_many(self, inos) -> SimGen:
        """Flush several files' dirty entries through one flusher-pool run,
        so the writebacks of different files share batches instead of
        serializing file by file."""
        pairs = yield from self._collect_dirty(inos)
        yield from self._writeback_many(pairs)
        if self._pack is not None:
            # fsync contract: chunks the writebacks appended to the open
            # container must be durable before flush returns.
            yield from self._pack.flush_inos(inos)
        drain = getattr(self.prt.store, "tier_drain_all", None)
        if drain is not None:
            # Tiered backend: writebacks only staged the objects hot; the
            # fsync contract needs them drained to the cold (durable) tier.
            yield from drain(src=self.node)

    def flush_all(self) -> SimGen:
        yield from self.flush_many(list(self._files))

    def invalidate(self, ino: int, flush_dirty: bool = True,
                   deleted: bool = False) -> SimGen:
        """Drop a file's entries (read/write lease revocation path).

        Dirty entries go through the same batched writeback the eviction
        path uses — a lease revocation of a heavily written file must not
        serialize one PUT per entry. ``deleted`` marks a revocation that
        precedes an unlink purge: the pack layer then retires the file's
        extents instead of publishing them."""
        yield from self.invalidate_many([ino], flush_dirty=flush_dirty,
                                        deleted=deleted)

    def invalidate_many(self, inos, flush_dirty: bool = True,
                        deleted: bool = False) -> SimGen:
        """Batched invalidation across files (flush dirty, then drop)."""
        pairs = yield from self._collect_dirty(inos)
        if flush_dirty:
            yield from self._writeback_many(pairs)
        for ino in inos:
            fc = self._files.pop(ino, None)
            if fc is None:
                continue
            for idx, entry in list(fc.tree.items()):
                if entry.loading is not None:
                    yield from self._wait(entry.loading)
                if entry.dirty and flush_dirty:
                    # Re-dirtied (or fetched-then-written) while we flushed.
                    yield from self._writeback(ino, entry)
                self._lru.pop((ino, idx), None)
        if self._pack is not None:
            if deleted:
                self._pack.kill_inos(inos)
            elif flush_dirty:
                # Revocation hand-off: seal and push the extent-index
                # deltas out so the next lease holder reads our bytes.
                yield from self._pack.publish(inos)
            else:
                self._pack.drop_inos(inos)

    def drop_all(self) -> SimGen:
        """Flush and drop everything (e.g. fio's cache drop between phases);
        writebacks fan out across files, not one file at a time."""
        yield from self.invalidate_many(list(self._files))

    def discard_all(self) -> None:
        """Crash: lose every cached byte, dirty or not."""
        self._files.clear()
        self._lru.clear()

    # -- introspection ------------------------------------------------------------

    def cached_entries(self, ino: int) -> int:
        fc = self._files.get(ino)
        return len(fc.tree) if fc else 0

    def has_dirty(self, ino: int) -> bool:
        fc = self._files.get(ino)
        if fc is None:
            return False
        return any(e.dirty for _, e in fc.tree.items())

    @property
    def total_entries(self) -> int:
        return len(self._lru)
