"""The user-level data object cache (Section III-D).

Serves the role of the kernel page cache for ArkFS: 2 MB cache entries
(matching the PRT data-object size) indexed by a radix tree, write-back for
dirty data, and an adaptive read-ahead window per open file that doubles on
sequential reads up to ``max_readahead`` (8 MB by default, as in CephFS) —
and jumps straight to the maximum when a file is read from offset 0.

The same class backs the baseline file systems' client caches (kernel page
cache for CephFS mounts, goofys' stream read-ahead) with different
parameters, so bandwidth comparisons exercise one code path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.engine import Event, SimGen, Simulator
from ..sim.network import Node
from .prt import PRT
from .radix import RadixTree

__all__ = ["CacheEntry", "ReadAheadState", "DataObjectCache"]


class CacheEntry:
    """One cached data object (at most ``entry_size`` bytes)."""

    __slots__ = ("index", "data", "dirty", "loading")

    def __init__(self, index: int):
        self.index = index
        self.data = bytearray()
        self.dirty = False
        self.loading: Optional[Event] = None  # set while a fetch is in flight

    @property
    def ready(self) -> bool:
        return self.loading is None


@dataclass
class ReadAheadState:
    """Per-open-file read-ahead bookkeeping ("each file has a read-ahead
    window")."""

    window: int = 0              # current window in bytes
    next_offset: int = -1        # expected offset of the next sequential read
    started: bool = False

    def on_read(self, offset: int, size: int, entry_size: int,
                max_readahead: int) -> None:
        if not self.started and offset == 0:
            # Read from the very beginning: expect a full sequential pass,
            # open the window to the maximum immediately.
            self.window = max_readahead
        elif offset == self.next_offset:
            self.window = min(max(self.window * 2, entry_size), max_readahead)
        else:
            self.window = entry_size  # random access: shrink back
        self.started = True
        self.next_offset = offset + size


class _FileCache:
    __slots__ = ("ino", "tree", "version")

    def __init__(self, ino: int):
        self.ino = ino
        self.tree = RadixTree()
        self.version = 0


class DataObjectCache:
    """Write-back object cache with read-ahead, shared by one client."""

    def __init__(self, sim: Simulator, prt: PRT, node: Optional[Node],
                 entry_size: int, capacity_bytes: int, max_readahead: int,
                 copy_bw: float = 8e9, writeback_parallel: int = 8):
        if entry_size != prt.data_object_size:
            raise ValueError("cache entry size must equal the PRT object size")
        self.sim = sim
        self.prt = prt
        self.node = node
        self.entry_size = entry_size
        self.capacity = max(1, capacity_bytes // entry_size)
        self.max_readahead = max_readahead
        self.copy_bw = copy_bw
        # Dirty entries are written back by this many concurrent "flusher
        # threads" (pdflush-style) — serializing PUTs here would wrongly
        # throttle sequential write bandwidth to one object per RTT.
        self.writeback_parallel = max(1, writeback_parallel)
        self._files: Dict[int, _FileCache] = {}
        self._lru: "OrderedDict[Tuple[int, int], CacheEntry]" = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "prefetches": 0, "flushes": 0,
                      "evictions": 0}

    # -- internals -------------------------------------------------------------

    def _file(self, ino: int) -> _FileCache:
        fc = self._files.get(ino)
        if fc is None:
            fc = _FileCache(ino)
            self._files[ino] = fc
        return fc

    def _touch(self, ino: int, entry: CacheEntry) -> None:
        self._lru[(ino, entry.index)] = entry
        self._lru.move_to_end((ino, entry.index))

    def _copy_cost(self, nbytes: int) -> SimGen:
        if self.node is not None and nbytes > 0:
            yield from self.node.work(nbytes / self.copy_bw)
        else:
            yield self.sim.timeout(0)

    def _make_room(self) -> SimGen:
        while len(self._lru) >= self.capacity:
            victim_key = None
            dirty_batch = []
            for key, entry in self._lru.items():
                if not entry.ready:
                    continue
                if victim_key is None:
                    victim_key = key
                if entry.dirty and len(dirty_batch) < self.writeback_parallel:
                    dirty_batch.append((key, entry))
            if victim_key is None:
                # Everything is mid-fetch; wait for one fetch to land.
                first = next(iter(self._lru.values()))
                yield first.loading
                continue
            if len(dirty_batch) > 1:
                # Flush a batch of dirty LRU entries concurrently (the
                # flusher-thread pool), so eviction pressure doesn't
                # serialize object PUTs. State may change while we wait, so
                # re-evaluate the victim afterwards.
                flushes = [
                    self.sim.process(self._writeback(k[0], e),
                                     name=f"wb:{k[0]:x}:{k[1]}")
                    for k, e in dirty_batch
                ]
                yield self.sim.all_of(flushes)
                continue
            ino, idx = victim_key
            entry = self._lru.pop(victim_key)
            if entry.dirty:
                yield from self._writeback(ino, entry)
            fc = self._files.get(ino)
            if fc is not None:
                fc.tree.delete(idx)
                if not fc.tree:
                    del self._files[ino]
            self.stats["evictions"] += 1

    def _writeback(self, ino: int, entry: CacheEntry) -> SimGen:
        if not entry.dirty:
            return
        # Clear the flag before the PUT: a write landing mid-flush re-dirties
        # the entry rather than getting silently marked clean.
        entry.dirty = False
        snapshot = bytes(entry.data)
        try:
            yield from self.prt.write_object(ino, entry.index, snapshot,
                                             src=self.node)
        except Exception:
            entry.dirty = True
            raise
        self.stats["flushes"] += 1

    def _fetch(self, ino: int, index: int) -> SimGen:
        """Install a loading entry and fill it from storage."""
        fc = self._file(ino)
        entry = CacheEntry(index)
        entry.loading = self.sim.event()
        fc.tree.set(index, entry)
        self._touch(ino, entry)
        try:
            data = yield from self.prt.read_object(ino, index, src=self.node)
        except Exception as exc:
            fc.tree.delete(index)
            self._lru.pop((ino, index), None)
            entry.loading.fail(exc)
            raise
        entry.data = bytearray(data)
        ev, entry.loading = entry.loading, None
        ev.succeed(entry)
        return entry

    def _get_entry(self, ino: int, index: int, fetch: bool = True) -> SimGen:
        """Return a ready entry, fetching on miss."""
        fc = self._file(ino)
        entry: Optional[CacheEntry] = fc.tree.get(index)
        if entry is not None:
            if entry.loading is not None:
                yield entry.loading
            self.stats["hits"] += 1
            self._touch(ino, entry)
            return entry
        self.stats["misses"] += 1
        if not fetch:
            # Caller will fully overwrite: a blank entry suffices.
            yield from self._make_room()
            entry = CacheEntry(index)
            fc.tree.set(index, entry)
            self._touch(ino, entry)
            return entry
        yield from self._make_room()
        entry = yield from self._fetch(ino, index)
        return entry

    # -- public API -----------------------------------------------------------------

    def read(self, ino: int, offset: int, length: int,
             ra: Optional[ReadAheadState] = None) -> SimGen:
        """Read through the cache. ``length`` must already be EOF-clipped.

        Issues asynchronous prefetches for the read-ahead window before
        waiting on the entries the caller needs, so sequential readers
        pipeline object GETs.
        """
        if length <= 0:
            yield self.sim.timeout(0)
            return b""
        if ra is not None:
            ra.on_read(offset, length, self.entry_size, self.max_readahead)
            # Kick prefetches for the window beyond this read.
            end_idx = (offset + length - 1) // self.entry_size
            ra_end = offset + length + ra.window
            ra_last_idx = (ra_end - 1) // self.entry_size
            fc = self._file(ino)
            for idx in range(end_idx + 1, ra_last_idx + 1):
                if fc.tree.get(idx) is None and len(self._lru) < self.capacity:
                    self.stats["prefetches"] += 1
                    self.sim.process(self._prefetch_one(ino, idx),
                                     name=f"ra:{ino:x}:{idx}")
        out = bytearray()
        for idx, off, n in self.prt.chunk_range(offset, length):
            entry = yield from self._get_entry(ino, idx)
            piece = bytes(entry.data[off : off + n])
            if len(piece) < n:
                piece += b"\x00" * (n - len(piece))
            out += piece
        yield from self._copy_cost(length)
        return bytes(out)

    def _prefetch_one(self, ino: int, index: int) -> SimGen:
        fc = self._file(ino)
        if fc.tree.get(index) is not None:
            return
        try:
            yield from self._fetch(ino, index)
        except Exception:
            pass  # prefetch failures surface on the demand read

    def write(self, ino: int, offset: int, data: bytes,
              old_size: int) -> SimGen:
        """Write-back write. ``old_size`` is the file size before this write
        (to decide whether a partial entry needs read-modify-write)."""
        pos = 0
        for idx, off, n in self.prt.chunk_range(offset, len(data)):
            piece = data[pos : pos + n]
            pos += n
            entry_base = idx * self.entry_size
            covers_existing = off == 0 and entry_base + n >= min(
                old_size, entry_base + self.entry_size
            )
            entry = yield from self._get_entry(
                ino, idx, fetch=not covers_existing and entry_base < old_size
            )
            if len(entry.data) < off:
                entry.data += b"\x00" * (off - len(entry.data))
            entry.data[off : off + n] = piece
            entry.dirty = True
        yield from self._copy_cost(len(data))

    def flush(self, ino: int) -> SimGen:
        """Write every dirty entry of a file back to object storage,
        ``writeback_parallel`` PUTs at a time."""
        fc = self._files.get(ino)
        if fc is None:
            return
        batch = []
        for idx, entry in list(fc.tree.items()):
            if entry.loading is not None:
                yield entry.loading
            if entry.dirty:
                batch.append(entry)
            if len(batch) >= self.writeback_parallel:
                yield self.sim.all_of([
                    self.sim.process(self._writeback(ino, e)) for e in batch])
                batch = []
        if batch:
            yield self.sim.all_of([
                self.sim.process(self._writeback(ino, e)) for e in batch])

    def flush_all(self) -> SimGen:
        for ino in list(self._files):
            yield from self.flush(ino)

    def invalidate(self, ino: int, flush_dirty: bool = True) -> SimGen:
        """Drop a file's entries (read/write lease revocation path)."""
        fc = self._files.pop(ino, None)
        if fc is None:
            return
        for idx, entry in list(fc.tree.items()):
            if entry.loading is not None:
                yield entry.loading
            if entry.dirty and flush_dirty:
                yield from self._writeback(ino, entry)
            self._lru.pop((ino, idx), None)

    def drop_all(self) -> SimGen:
        """Flush and drop everything (e.g. fio's cache drop between phases)."""
        for ino in list(self._files):
            yield from self.invalidate(ino)

    def discard_all(self) -> None:
        """Crash: lose every cached byte, dirty or not."""
        self._files.clear()
        self._lru.clear()

    # -- introspection ------------------------------------------------------------

    def cached_entries(self, ino: int) -> int:
        fc = self._files.get(ino)
        return len(fc.tree) if fc else 0

    def has_dirty(self, ino: int) -> bool:
        fc = self._files.get(ino)
        if fc is None:
            return False
        return any(e.dirty for _, e in fc.tree.items())

    @property
    def total_entries(self) -> int:
        return len(self._lru)
