"""Discrete-event simulation substrate for the ArkFS reproduction.

Everything performance-related in this repository runs on this kernel:
file-system operations are generator coroutines driven by a
:class:`Simulator`, contending for :class:`Resource` CPU slots and
:class:`BandwidthPipe` links so that the paper's queueing effects (MDS
saturation, FUSE lock contention, read-ahead pipelining) emerge naturally.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimGen,
    SimulationError,
    Simulator,
    Timeout,
)
from .network import NetParams, Network, Node, NodeDown, RpcError
from .resources import BandwidthPipe, Mutex, Request, Resource, Store, serve
from .stats import (
    BandwidthMeter,
    OpStats,
    PhaseRecorder,
    PhaseResult,
    kernel_counters,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthMeter",
    "BandwidthPipe",
    "Event",
    "Interrupt",
    "Mutex",
    "NetParams",
    "Network",
    "Node",
    "NodeDown",
    "OpStats",
    "PhaseRecorder",
    "PhaseResult",
    "Process",
    "Request",
    "Resource",
    "RpcError",
    "SimGen",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "kernel_counters",
    "serve",
]
