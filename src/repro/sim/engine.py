"""Discrete-event simulation kernel.

This is the timing substrate for the whole reproduction: file-system
operations are generator coroutines that yield :class:`Event` objects and are
driven by a :class:`Simulator`. The design is a compact subset of the SimPy
process-interaction model, implemented from scratch so the repository has no
dependencies beyond the scientific stack.

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done" and sim.now == 1.5

Scheduler structure (DESIGN.md §10). The reference scheduler is a single
``(time, seq, event)`` heap: every triggered or due event is pushed and
popped through ``heapq``, and ``seq`` breaks same-time ties in scheduling
order. Profiling shows the vast majority of events in the file-system
models are scheduled at delay 0 (process kick-offs, ``succeed``/``fail``,
resource grants, store hand-offs), so the default scheduler splits the
event set in two:

* a FIFO *ready deque* holding events due exactly at ``now`` — appended
  and popped in O(1) with no heap traffic. Heap entries at time ``now``
  were necessarily scheduled before the clock reached ``now`` (a strictly
  positive delay lands strictly in the future), so they carry smaller
  ``seq`` values than anything in the deque and are drained first; deque
  entries then fire in append (= ``seq``) order. The pop order is
  therefore *identical* to the reference heap's.
* the heap, now touched only by events with a strictly-future due time.

On top of that, :meth:`Process._step` consumes a yielded event *inline*
(continuing the generator without returning to the run loop) exactly when
that event is provably the next one the run loop would pop: it is at the
front of the ready deque, the heap holds nothing due at ``now``, and no
enclosing callback pass has callbacks still pending (``_cb_pending``).
Under those conditions inlining is a pure constant-folding of the run
loop and cannot reorder anything.

``Simulator(fast=False)`` — or ``REPRO_SIM_KERNEL=heap`` in the
environment — selects the reference heap-only scheduler; the bit-identity
pins in ``tests/sim/test_kernel_identity.py`` replay the paper figures on
both and require identical output.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "DEFAULT_FAST",
]

# A simulated operation: a generator that yields Events and returns a value.
SimGen = Generator["Event", Any, Any]

#: Default scheduler for new Simulators. ``REPRO_SIM_KERNEL=heap`` forces
#: the reference single-heap scheduler everywhere (bit-identity pins and
#: the perf gate use it as the comparison baseline).
DEFAULT_FAST = os.environ.get("REPRO_SIM_KERNEL", "fast") != "heap"

#: Bounds for the internal object freelists (timeouts / requests). Small:
#: the pools only need to cover the per-hop working set, not the backlog.
_TIMEOUT_POOL_MAX = 256

#: Cap on the freelist of recycled process kick-off events.
_START_POOL_MAX = 256


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary user data (e.g. the reason for a crash).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is *processed* once the simulator has run its
    callbacks. Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_auto_value")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        # Value delivered automatically when a pre-scheduled event (e.g. a
        # Timeout) is popped off the queue without an explicit succeed()/fail().
        self._auto_value: Any = None

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not Event._PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            if sim._fast:
                sim._ready.append(self)
            else:
                sim._seq += 1
                heapq.heappush(sim._heap, (sim.now, sim._seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not Event._PENDING:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exc
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            if sim._fast:
                sim._ready.append(self)
            else:
                sim._seq += 1
                heapq.heappush(sim._heap, (sim.now, sim._seq, self))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately in the current step.
            fn(self)
        else:
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._auto_value = value
        sim._schedule(self, delay)


class Process(Event):
    """Drives a generator coroutine; the process itself is awaitable.

    The process event triggers when the generator returns (success, with the
    generator's return value) or raises (failure, with the exception).
    """

    __slots__ = ("_gen", "_waiting_on", "_wait_epoch", "name", "parent_proc",
                 "trace_on")

    def __init__(self, sim: "Simulator", gen: SimGen, name: str = ""):
        # Event.__init__ is inlined: process spawns are the hottest
        # allocation site in RPC-bound workloads, and the extra call plus
        # generic kick-off scheduling showed up in every profile.
        self.sim = sim
        self.callbacks = []
        self._value = Event._PENDING
        self._ok = None
        self._scheduled = False
        self._auto_value = None
        self._gen = gen
        # Bumped every time the process starts waiting on a (new) event.
        # Interrupt delivery checks it alongside the event identity, so a
        # pooled event object reused for a later wait of the same process
        # can never satisfy a stale interrupt.
        self._wait_epoch = 0
        self.name = name or getattr(gen, "__name__", "process")
        # The process that spawned this one (None for top-level processes).
        # Observability uses the chain to parent spans across fan-outs.
        parent = sim._active_proc
        self.parent_proc: Optional["Process"] = parent
        # Per-process "tracing active" bit for sampled tracing: inherited
        # from the spawner so every process in a sampled operation's fan-out
        # keeps tracing. Only consulted while a sampling tracer is installed
        # (``sim._sample_tracer``); see Process._step.
        self.trace_on = False if parent is None else parent.trace_on
        # Kick off at the current time. The kick-off event is invisible to
        # user code, so it is drawn from (and recycled into) a freelist
        # (its callbacks slot is left None in the pool; the list literal
        # below refreshes it) and, on the fast kernel, appended to the
        # ready deque directly — a delay-0 schedule lands there anyway.
        if sim._fast:
            start = sim._start_pool.pop() if sim._start_pool else Event(sim)
            start._scheduled = True
            sim._ready.append(start)
        else:
            start = Event(sim)
            sim._schedule(start, 0)
        start.callbacks = [self._kickoff]
        self._waiting_on = start

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not Event._PENDING:
            return
        if self._waiting_on is not None:
            target = self._waiting_on
            epoch = self._wait_epoch

            def deliver(_ev: Event, self=self, cause=cause) -> None:
                # The process may have resumed (or died) through its awaited
                # event in the meantime; only interrupt if still waiting.
                # The epoch guards against the awaited event *object* being
                # recycled into a later wait of the same process.
                if (self._value is Event._PENDING
                        and self._waiting_on is target
                        and self._wait_epoch == epoch):
                    self._waiting_on = None
                    self._step(Interrupt(cause), throw=True)

            wake = Event(self.sim)
            self.sim._schedule(wake, 0)
            wake.callbacks.append(deliver)

    # -- internal ---------------------------------------------------------

    def _kickoff(self, event: Event) -> None:
        """First resume, via the pooled kick-off event.

        The run loop never touches an event after its callbacks fire, so
        the kick-off can be reset and recycled right here. A kick-off
        always succeeds with value ``None``; the epoch guard in
        :meth:`interrupt` keeps a recycled object from satisfying a stale
        interrupt aimed at a previous spawn."""
        sim = self.sim
        if sim._fast and len(sim._start_pool) < _START_POOL_MAX:
            # callbacks stays None and _scheduled True: the spawn path
            # overwrites both when it reuses the object.
            event._value = Event._PENDING
            event._ok = None
            sim._start_pool.append(event)
        if self._value is Event._PENDING and self._waiting_on is event:
            self._waiting_on = None
            self._step(None, throw=False)

    def _resume(self, event: Event) -> None:
        if self._value is not Event._PENDING or self._waiting_on is not event:
            # Process finished, or was interrupted away from this event and is
            # now waiting on something else: this wake-up is stale.
            return
        self._waiting_on = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        sim = self.sim
        gen = self._gen
        prev_active = sim._active_proc
        sim._active_proc = self
        # Sampled tracing: with a sampling tracer installed, ``sim._tracer``
        # is *context-local* — synced here from the per-process bit so every
        # instrumentation and elision site keeps its single ``sim._tracer``
        # check yet sees the tracer only inside sampled operations. One
        # attribute load + branch when sampling is off (the common case).
        st = sim._sample_tracer
        if st is not None:
            sim._tracer = st if self.trace_on else None
        fast = sim._fast
        ready = sim._ready
        heap = sim._heap
        PENDING = Event._PENDING
        try:
            while True:
                try:
                    if throw:
                        target = gen.throw(value)
                    else:
                        target = gen.send(value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001 - propagate via event
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    gen.close()
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded non-event {target!r}"
                        )
                    )
                    return
                if target.sim is not sim:
                    gen.close()
                    self.fail(
                        SimulationError("yielded event belongs to another simulator"))
                    return
                # Immediate-resume fast path: the yielded event is exactly
                # the next one the run loop would process (front of the
                # ready deque, nothing due at ``now`` on the heap, and no
                # enclosing callback pass mid-flight). Consuming it here is
                # a pure inlining of the run loop: the reference (time,
                # seq) order is preserved event-for-event.
                if (fast and ready and ready[0] is target
                        and not sim._cb_pending
                        and not (heap and heap[0][0] <= sim.now)):
                    ready.popleft()
                    sim._n_inline += 1
                    if target._value is PENDING:
                        target._ok = True
                        target._value = target._auto_value
                    callbacks = target.callbacks
                    target.callbacks = None
                    if callbacks:
                        # Rare: the event has other waiters. Run them in
                        # registration order first; this generator's
                        # continuation is logically the final callback of
                        # the pass, so it counts as pending meanwhile.
                        base = sim._cb_pending
                        n = len(callbacks)
                        try:
                            for i in range(n):
                                sim._cb_pending = base + n - i
                                callbacks[i](target)
                        finally:
                            sim._cb_pending = base
                    value = target._value
                    throw = not target._ok
                    continue
                cbs = target.callbacks
                if cbs is None:
                    # Already processed (e.g. a pooled event consumed by an
                    # earlier waiter): continue with its settled value, the
                    # non-recursive equivalent of add_callback's immediate
                    # dispatch to _resume.
                    value = target._value
                    throw = not target._ok
                    continue
                self._waiting_on = target
                self._wait_epoch += 1
                cbs.append(self._resume)
                return
        finally:
            sim._active_proc = prev_active
            if st is not None:
                sim._tracer = (st if prev_active is not None
                               and prev_active.trace_on else None)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_done", "_index")

    #: AnyOf needs an event -> index map for O(1) first-trigger lookup;
    #: AllOf never looks indices up and skips building it.
    _NEEDS_INDEX = False

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if self._NEEDS_INDEX:
            # Built before callbacks attach (an already-processed child
            # fires _on_child synchronously below). setdefault semantics:
            # duplicate children deterministically map to their first
            # position, matching list.index.
            index: dict = {}
            for i, ev in enumerate(self.events):
                if ev not in index:
                    index[ev] = i
            self._index = index
        else:
            self._index = None
        if not self.events:
            self._auto_value = []
            sim._schedule(self, 0)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; fails fast on failure.

    Value is the list of child values in the original order.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers (value or failure).

    Value is ``(index, value)`` of the first event to fire.
    """

    __slots__ = ()

    _NEEDS_INDEX = True

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((self._index[event], event._value))


class Simulator:
    """The event loop: a ready deque for now-events plus a time-ordered heap.

    ``fast=None`` (the default) follows :data:`DEFAULT_FAST`; ``fast=False``
    runs the reference heap-only scheduler with byte-identical semantics.
    """

    # Span tracer hook (set by repro.obs when tracing is enabled). A class
    # attribute so instrumented hot paths can read ``sim._tracer`` without
    # getattr defaults; ``None`` means tracing is off. With *sampled*
    # tracing the installed tracer lives in ``_sample_tracer`` and
    # ``_tracer`` becomes context-local: Process._step points it at the
    # tracer only while stepping a process whose ``trace_on`` bit is set.
    _tracer = None
    # The tracer installed in sampling mode (None = not sampling).
    _sample_tracer = None
    # Root-op observer (repro.obs: sampling decision + slow-op log + flight
    # recorder feed); consulted by the mount layer's VFS-op wrapper only.
    _obs_ops = None
    # Flight recorder (repro.obs.recorder.FlightRecorder). Subsystems feed
    # it via ``rec = sim._recorder; if rec is not None: rec.record(...)``.
    _recorder = None

    def __init__(self, fast: Optional[bool] = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._ready: deque[Event] = deque()
        self._seq = 0
        self._fast = DEFAULT_FAST if fast is None else bool(fast)
        # Process currently being stepped (i.e. whose generator frame is on
        # the Python stack). Spawning a Process inside it records the chain.
        self._active_proc: Optional[Process] = None
        # Number of callbacks still pending in enclosing multi-callback
        # passes. Non-zero blocks every inline fast path: the reference
        # scheduler would run those callbacks before any freshly-queued
        # event.
        self._cb_pending = 0
        # Freelist of engine-owned Timeout objects (resource holds, link
        # latency); see _timeout_acquire/_timeout_release.
        self._timeout_pool: list[Timeout] = []
        # Freelist of process kick-off events (see Process._kickoff).
        self._start_pool: list[Event] = []
        # Kernel counters (see repro.sim.stats.kernel_counters).
        self._n_steps = 0    # events processed through the run loop
        self._n_inline = 0   # events consumed inline by Process._step

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        t = self.now + delay
        if self._fast and t == self.now:
            # Due right now (delay 0, or a positive delay absorbed by float
            # rounding): FIFO ready queue, no heap traffic. Routing by the
            # *effective* time keeps the heap free of now-events scheduled
            # at now, which is what makes heap-before-deque draining
            # equivalent to seq order.
            self._ready.append(event)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (t, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an externally-triggered (succeed/fail) event for processing."""
        if not event._scheduled:
            self._schedule(event, 0)

    def _inline_ok(self) -> bool:
        """True iff an event queued *now* would be the very next thing the
        run loop processes — the condition under which short-circuiting an
        Event round-trip (zero-hold resource use, zero-latency hop)
        preserves the reference event order exactly."""
        return (self._fast and not self._ready and not self._cb_pending
                and not (self._heap and self._heap[0][0] <= self.now))

    # -- internal object reuse --------------------------------------------

    def _timeout_acquire(self, delay: float) -> Timeout:
        """A Timeout for engine-owned waits (resource holds, link latency).

        May return a recycled instance; the caller must hand it back via
        :meth:`_timeout_release` after its yield completes, and must never
        expose it to user code."""
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._value = Event._PENDING
            t._ok = None
            t._scheduled = False
            t.callbacks = []
            t.delay = delay
            self._schedule(t, delay)
            return t
        return Timeout(self, delay)

    def _timeout_release(self, t: Timeout) -> None:
        if (self._fast and t.callbacks is None
                and len(self._timeout_pool) < _TIMEOUT_POOL_MAX):
            self._timeout_pool.append(t)

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: SimGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    def _run_callbacks(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            callbacks[0](event)
        elif callbacks:
            self._run_multi(event, callbacks)

    def _run_multi(self, event: Event, callbacks: list) -> None:
        # While callback i runs, the callbacks after it are "pending":
        # every inline fast path stays disabled so the freshly-queued
        # events they produce cannot jump ahead of the rest of this pass.
        base = self._cb_pending
        n = len(callbacks)
        try:
            for i in range(n):
                self._cb_pending = base + n - i - 1
                callbacks[i](event)
        finally:
            self._cb_pending = base

    def step(self) -> None:
        """Process a single event."""
        ready = self._ready
        heap = self._heap
        # Heap entries due at ``now`` were scheduled before the clock got
        # here and carry smaller seq values than anything in the deque:
        # drain them first (identical to reference (time, seq) order).
        if ready and not (heap and heap[0][0] <= self.now):
            event = ready.popleft()
        else:
            time, _seq, event = heapq.heappop(heap)
            assert time >= self.now, "event scheduled in the past"
            self.now = time
        self._n_steps += 1
        if event._value is Event._PENDING:
            # Pre-scheduled event (Timeout, process kick-off, empty condition)
            # reaching its due time: it succeeds with its auto value.
            event._ok = True
            event._value = event._auto_value
        self._run_callbacks(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError("cannot run backwards in time")
        ready = self._ready
        heap = self._heap
        pop = heapq.heappop
        PENDING = Event._PENDING
        while ready or heap:
            if ready and not (heap and heap[0][0] <= self.now):
                event = ready.popleft()
            else:
                if until is not None and not ready and heap[0][0] > until:
                    self.now = until
                    return
                t, _seq, event = pop(heap)
                self.now = t
            self._n_steps += 1
            if event._value is PENDING:
                event._ok = True
                event._value = event._auto_value
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            elif callbacks:
                self._run_multi(event, callbacks)
        if until is not None:
            self.now = until

    def run_process(self, gen: SimGen, name: str = "") -> Any:
        """Convenience: run ``gen`` to completion and return its value.

        Raises the process's exception if it failed. Other already-scheduled
        events continue to be processed as needed.
        """
        proc = self.process(gen, name=name)
        ready = self._ready
        heap = self._heap
        PENDING = Event._PENDING
        while proc._value is PENDING and (ready or heap):
            self.step()
        if proc._value is PENDING:
            raise SimulationError(
                f"process {proc.name!r} deadlocked: no more events"
            )
        if not proc._ok:
            raise proc._value
        return proc._value
