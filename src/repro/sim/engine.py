"""Discrete-event simulation kernel.

This is the timing substrate for the whole reproduction: file-system
operations are generator coroutines that yield :class:`Event` objects and are
driven by a :class:`Simulator`. The design is a compact subset of the SimPy
process-interaction model, implemented from scratch so the repository has no
dependencies beyond the scientific stack.

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.5)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done" and sim.now == 1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

# A simulated operation: a generator that yields Events and returns a value.
SimGen = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary user data (e.g. the reason for a crash).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is *processed* once the simulator has run its
    callbacks. Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_auto_value")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        # Value delivered automatically when a pre-scheduled event (e.g. a
        # Timeout) is popped off the heap without an explicit succeed()/fail().
        self._auto_value: Any = None

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exc
        self.sim._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately in the current step.
            fn(self)
        else:
            self.callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._auto_value = value
        sim._schedule(self, delay)


class Process(Event):
    """Drives a generator coroutine; the process itself is awaitable.

    The process event triggers when the generator returns (success, with the
    generator's return value) or raises (failure, with the exception).
    """

    __slots__ = ("_gen", "_waiting_on", "name", "parent_proc")

    def __init__(self, sim: "Simulator", gen: SimGen, name: str = ""):
        Event.__init__(self, sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # The process that spawned this one (None for top-level processes).
        # Observability uses the chain to parent spans across fan-outs.
        self.parent_proc: Optional["Process"] = sim._active_proc
        # Kick off at the current time.
        start = Event(sim)
        self._waiting_on = start
        sim._schedule(start, 0)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        if self._waiting_on is not None:
            target = self._waiting_on

            def deliver(_ev: Event, self=self, cause=cause) -> None:
                # The process may have resumed (or died) through its awaited
                # event in the meantime; only interrupt if still waiting.
                if not self.triggered and self._waiting_on is target:
                    self._waiting_on = None
                    self._step(Interrupt(cause), throw=True)

            wake = Event(self.sim)
            self.sim._schedule(wake, 0)
            wake.add_callback(deliver)

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self.triggered or self._waiting_on is not event:
            # Process finished, or was interrupted away from this event and is
            # now waiting on something else: this wake-up is stale.
            return
        self._waiting_on = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        sim = self.sim
        prev_active = sim._active_proc
        sim._active_proc = self
        try:
            if throw:
                target = self._gen.throw(value)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        finally:
            sim._active_proc = prev_active
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        if target.sim is not self.sim:
            self._gen.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self._auto_value = []
            sim._schedule(self, 0)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; fails fast on failure.

    Value is the list of child values in the original order.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers (value or failure).

    Value is ``(index, value)`` of the first event to fire.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((self.events.index(event), event._value))


class Simulator:
    """The event loop: a time-ordered heap of triggered events."""

    # Span tracer hook (set by repro.obs when tracing is enabled). A class
    # attribute so instrumented hot paths can read ``sim._tracer`` without
    # getattr defaults; ``None`` means tracing is off.
    _tracer = None

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # Process currently being stepped (i.e. whose generator frame is on
        # the Python stack). Spawning a Process inside it records the chain.
        self._active_proc: Optional[Process] = None

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an externally-triggered (succeed/fail) event for processing."""
        if not event._scheduled:
            self._schedule(event, 0)

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: SimGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process a single event."""
        time, _seq, event = heapq.heappop(self._heap)
        assert time >= self.now, "event scheduled in the past"
        self.now = time
        if event._value is Event._PENDING:
            # Pre-scheduled event (Timeout, process kick-off, empty condition)
            # reaching its due time: it succeeds with its auto value.
            event._ok = True
            event._value = event._auto_value
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError("cannot run backwards in time")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_process(self, gen: SimGen, name: str = "") -> Any:
        """Convenience: run ``gen`` to completion and return its value.

        Raises the process's exception if it failed. Other already-scheduled
        events continue to be processed as needed.
        """
        proc = self.process(gen, name=name)
        while not proc.triggered and self._heap:
            self.step()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked: no more events"
            )
        if not proc._ok:
            raise proc._value
        return proc._value
