"""Cluster network model: nodes, links, and RPC.

Nodes own a CPU :class:`~repro.sim.resources.Resource` and a NIC
:class:`~repro.sim.resources.BandwidthPipe`. Messages pay one-way latency
plus serialization time through both endpoints' NICs; RPCs run a registered
handler coroutine on the destination node. This models what the paper calls
"network round-trip overheads between clients and metadata servers" and the
gRPC traffic between ArkFS clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .engine import SimGen, Simulator
from .resources import BandwidthPipe, Resource

__all__ = ["NetParams", "Node", "Network", "RpcError", "NodeDown",
           "MessageDropped"]


class RpcError(Exception):
    """Transport-level RPC failure (destination down / unreachable)."""


class NodeDown(RpcError):
    """The destination node is not alive."""


class MessageDropped(NodeDown):
    """A message was lost in transit (fault injection).

    Subclasses :class:`NodeDown` because the sender cannot distinguish a
    lost message from a dead peer — it burns its RPC timeout and takes the
    same retry path either way."""


@dataclass(frozen=True)
class NetParams:
    """Link characteristics, defaulting to a 10 GbE LAN."""

    latency_s: float = 50e-6          # one-way propagation + stack latency
    bandwidth_bps: float = 10e9 / 8   # bytes/sec per NIC
    rpc_timeout_s: float = 1.0        # time wasted detecting a dead peer


class Node:
    """A machine in the cluster: CPU cores, a NIC, and an RPC dispatch table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int = 1,
        net: Optional["Network"] = None,
        nic_bps: Optional[float] = None,
    ):
        self.sim = sim
        self.name = name
        self.cpu = Resource(sim, capacity=cores, name=f"{name}.cpu")
        self.net = net
        bw = nic_bps if nic_bps is not None else (net.params.bandwidth_bps if net else 10e9 / 8)
        self.nic = BandwidthPipe(sim, bw, name=f"{name}.nic")
        self.alive = True
        self._handlers: Dict[str, Callable[..., SimGen]] = {}
        if net is not None:
            net.attach(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} alive={self.alive}>"

    def work(self, seconds: float) -> SimGen:
        """Consume this node's CPU for ``seconds`` (queueing if contended)."""
        if seconds > 0:
            yield from self.cpu.use(seconds)

    def register(self, method: str, handler: Callable[..., SimGen]) -> None:
        """Register an RPC handler: a generator function ``handler(*args)``."""
        self._handlers[method] = handler

    def crash(self) -> None:
        """Mark the node dead: future RPCs to it fail after a timeout."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def call(
        self,
        target: "Node",
        method: str,
        *args: Any,
        req_size: int = 256,
        resp_size: int = 256,
    ) -> SimGen:
        """RPC from this node to ``target``; returns the handler's value.

        Application-level exceptions raised by the handler propagate to the
        caller (after paying the response network cost), mirroring how a gRPC
        error status travels back. Transport failures raise :class:`RpcError`.
        """
        tr = self.sim._tracer
        if tr is not None:
            with tr.span("rpc:" + method, "rpc", dst=target.name):
                return (yield from self._call(target, method, *args,
                                              req_size=req_size,
                                              resp_size=resp_size))
        return (yield from self._call(target, method, *args,
                                      req_size=req_size,
                                      resp_size=resp_size))

    def _call(
        self,
        target: "Node",
        method: str,
        *args: Any,
        req_size: int = 256,
        resp_size: int = 256,
    ) -> SimGen:
        assert self.net is not None, "node not attached to a network"
        if not self.alive:
            raise NodeDown(f"caller {self.name} is down")
        if target is self:
            # Local dispatch: no network, but still runs the handler.
            handler = target._handlers[method]
            result = yield self.sim.process(handler(*args), name=f"{method}@{target.name}")
            return result
        yield from self.net.send(self, target, req_size)
        if not target.alive:
            # Model the caller burning its RPC timeout discovering the death.
            yield self.sim.timeout(self.net.params.rpc_timeout_s)
            raise NodeDown(f"rpc {method!r}: node {target.name} is down")
        try:
            handler = target._handlers[method]
        except KeyError:
            raise RpcError(f"node {target.name} has no handler {method!r}") from None
        try:
            result = yield self.sim.process(
                handler(*args), name=f"{method}@{target.name}"
            )
        except Exception:
            if target.alive and self.alive:
                yield from self.net.send(target, self, resp_size)
            raise
        if not target.alive:
            yield self.sim.timeout(self.net.params.rpc_timeout_s)
            raise NodeDown(f"rpc {method!r}: node {target.name} died mid-call")
        yield from self.net.send(target, self, resp_size)
        return result


class Network:
    """A flat cluster network with uniform latency and per-NIC bandwidth."""

    def __init__(self, sim: Simulator, params: Optional[NetParams] = None):
        self.sim = sim
        self.params = params or NetParams()
        self.nodes: Dict[str, Node] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # Optional repro.faults.FaultPlan consulted per message; None (the
        # default) costs nothing — same contract as the span tracer.
        self.faults = None

    def attach(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.net = self

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def send(self, src: Node, dst: Node, size: int) -> SimGen:
        """Move ``size`` bytes from ``src`` to ``dst``: NIC serialization at
        both ends plus propagation latency."""
        self.messages_sent += 1
        self.bytes_sent += size
        if self.faults is not None:
            act = self.faults.on_message(src.name, dst.name, size)
            if act is not None:
                action, delay = act
                if action == "drop":
                    # The sender can't see the loss directly; it burns its
                    # RPC timeout before concluding the peer is unreachable.
                    yield self.sim.timeout(self.params.rpc_timeout_s)
                    raise MessageDropped(
                        f"message {src.name}->{dst.name} dropped ({size}B)")
                yield self.sim.timeout(delay)
        yield from src.nic.transfer(size)
        tr = self.sim._tracer
        if tr is not None:
            with tr.span("net.lat", "net"):
                yield self.sim.timeout(self.params.latency_s)
        else:
            yield self.sim.timeout(self.params.latency_s)
        yield from dst.nic.transfer(size)
