"""Cluster network model: nodes, links, and RPC.

Nodes own a CPU :class:`~repro.sim.resources.Resource` and a NIC
:class:`~repro.sim.resources.BandwidthPipe`. Messages pay one-way latency
plus serialization time through both endpoints' NICs; RPCs run a registered
handler coroutine on the destination node. This models what the paper calls
"network round-trip overheads between clients and metadata servers" and the
gRPC traffic between ArkFS clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .engine import SimGen, Simulator
from .resources import BandwidthPipe, Resource

__all__ = ["NetParams", "Node", "Network", "RpcError", "NodeDown",
           "MessageDropped"]


class RpcError(Exception):
    """Transport-level RPC failure (destination down / unreachable)."""


class NodeDown(RpcError):
    """The destination node is not alive."""


class MessageDropped(NodeDown):
    """A message was lost in transit (fault injection).

    Subclasses :class:`NodeDown` because the sender cannot distinguish a
    lost message from a dead peer — it burns its RPC timeout and takes the
    same retry path either way."""


@dataclass(frozen=True)
class NetParams:
    """Link characteristics, defaulting to a 10 GbE LAN."""

    latency_s: float = 50e-6          # one-way propagation + stack latency
    bandwidth_bps: float = 10e9 / 8   # bytes/sec per NIC
    rpc_timeout_s: float = 1.0        # time wasted detecting a dead peer


class Node:
    """A machine in the cluster: CPU cores, a NIC, and an RPC dispatch table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int = 1,
        net: Optional["Network"] = None,
        nic_bps: Optional[float] = None,
    ):
        self.sim = sim
        self.name = name
        self.cpu = Resource(sim, capacity=cores, name=f"{name}.cpu")
        self.net = net
        bw = nic_bps if nic_bps is not None else (net.params.bandwidth_bps if net else 10e9 / 8)
        self.nic = BandwidthPipe(sim, bw, name=f"{name}.nic")
        self.alive = True
        # QoS tenant attribution: set by build_arkfs / bind_tenant when the
        # QoS plane is enabled; stores read it only when qos is installed.
        self.tenant: Optional[str] = None
        self._handlers: Dict[str, Callable[..., SimGen]] = {}
        if net is not None:
            net.attach(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} alive={self.alive}>"

    def work(self, seconds: float) -> SimGen:
        """Consume this node's CPU for ``seconds`` (queueing if contended)."""
        if seconds > 0:
            yield from self.cpu.use(seconds)

    def register(self, method: str, handler: Callable[..., SimGen]) -> None:
        """Register an RPC handler: a generator function ``handler(*args)``."""
        self._handlers[method] = handler

    def crash(self) -> None:
        """Mark the node dead: future RPCs to it fail after a timeout."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def call(
        self,
        target: "Node",
        method: str,
        *args: Any,
        req_size: int = 256,
        resp_size: int = 256,
    ) -> SimGen:
        """RPC from this node to ``target``; returns the handler's value.

        Application-level exceptions raised by the handler propagate to the
        caller (after paying the response network cost), mirroring how a gRPC
        error status travels back. Transport failures raise :class:`RpcError`.

        Not itself a generator function: it returns the underlying RPC
        generator so the untraced hot path costs a single frame under
        ``yield from``. Callers iterate it exactly as before.
        """
        if self.sim._tracer is None:
            return self._call(target, method, *args,
                              req_size=req_size, resp_size=resp_size)
        return self._traced_call(target, method, *args,
                                 req_size=req_size, resp_size=resp_size)

    def _traced_call(
        self,
        target: "Node",
        method: str,
        *args: Any,
        req_size: int = 256,
        resp_size: int = 256,
    ) -> SimGen:
        with self.sim._tracer.span("rpc:" + method, "rpc", dst=target.name):
            return (yield from self._call(target, method, *args,
                                          req_size=req_size,
                                          resp_size=resp_size))

    def _call(
        self,
        target: "Node",
        method: str,
        *args: Any,
        req_size: int = 256,
        resp_size: int = 256,
    ) -> SimGen:
        assert self.net is not None, "node not attached to a network"
        sim = self.sim
        # The qualified span name only matters when tracing; skip the
        # per-RPC f-string otherwise (the bare method still names the
        # process for debugging).
        name = (f"{method}@{target.name}" if sim._tracer is not None
                else method)
        if not self.alive:
            raise NodeDown(f"caller {self.name} is down")
        if target is self:
            # Local dispatch: no network, but still runs the handler.
            handler = target._handlers[method]
            result = yield sim.process(handler(*args), name=name)
            return result
        net = self.net
        if not net.try_instant_send(self, target, req_size):
            yield from net.send(self, target, req_size)
        if not target.alive:
            # Model the caller burning its RPC timeout discovering the death.
            yield self.sim.timeout(self.net.params.rpc_timeout_s)
            raise NodeDown(f"rpc {method!r}: node {target.name} is down")
        try:
            handler = target._handlers[method]
        except KeyError:
            raise RpcError(f"node {target.name} has no handler {method!r}") from None
        try:
            result = yield sim.process(handler(*args), name=name)
        except Exception:
            if target.alive and self.alive:
                yield from net.send(target, self, resp_size)
            raise
        if not target.alive:
            yield sim.timeout(net.params.rpc_timeout_s)
            raise NodeDown(f"rpc {method!r}: node {target.name} died mid-call")
        if not net.try_instant_send(target, self, resp_size):
            yield from net.send(target, self, resp_size)
        return result


class Network:
    """A flat cluster network with uniform latency and per-NIC bandwidth."""

    def __init__(self, sim: Simulator, params: Optional[NetParams] = None):
        self.sim = sim
        self.params = params or NetParams()
        # Params are frozen; cache the zero-latency check the instant-send
        # fast path makes on every message.
        self._lat0 = self.params.latency_s == 0.0
        self.nodes: Dict[str, Node] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # Optional repro.faults.FaultPlan consulted per message; None (the
        # default) costs nothing — same contract as the span tracer.
        self.faults = None

    def attach(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.net = self

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def try_instant_send(self, src: Node, dst: Node, size: int) -> bool:
        """Non-generator fast path for :meth:`send`: deliver instantly and
        return True iff every segment (both NIC serializations and the
        latency hop) would individually short-circuit — zero latency, idle
        NICs, zero serialization time, no faults/tracer, nothing else
        runnable. All conditions are checked before any accounting so the
        elision is all-or-nothing; on False the caller pays :meth:`send`.

        Equivalent to ``send`` because when all three segments
        short-circuit, ``send`` completes without a single yield — the
        kernel state the conditions depend on cannot change mid-way."""
        sim = self.sim
        if (self._lat0 and size >= 0 and self.faults is None
                and sim._tracer is None and sim._inline_ok()):
            sp, dp = src.nic, dst.nic
            sres, dres = sp._res, dp._res
            if (sres._in_use < sres.capacity
                    and dres._in_use < dres.capacity
                    and size * sres.capacity / sp.bytes_per_sec == 0.0
                    and size * dres.capacity / dp.bytes_per_sec == 0.0):
                self.messages_sent += 1
                self.bytes_sent += size
                sp.bytes_moved += size
                dp.bytes_moved += size
                return True
        return False

    def send(self, src: Node, dst: Node, size: int) -> SimGen:
        """Move ``size`` bytes from ``src`` to ``dst``: NIC serialization at
        both ends plus propagation latency."""
        self.messages_sent += 1
        self.bytes_sent += size
        if self.faults is not None:
            act = self.faults.on_message(src.name, dst.name, size)
            if act is not None:
                action, delay = act
                if action == "drop":
                    # The sender can't see the loss directly; it burns its
                    # RPC timeout before concluding the peer is unreachable.
                    yield self.sim.timeout(self.params.rpc_timeout_s)
                    raise MessageDropped(
                        f"message {src.name}->{dst.name} dropped ({size}B)")
                yield self.sim.timeout(delay)
        yield from src.nic.transfer(size)
        sim = self.sim
        tr = sim._tracer
        lat = self.params.latency_s
        if tr is not None:
            with tr.span("net.lat", "net"):
                yield sim.timeout(lat)
        elif lat == 0.0:
            # Zero-latency hop: skip the timeout round-trip entirely when
            # nothing else is runnable right now (order-identical); fall
            # back to a plain zero timeout otherwise.
            if not sim._inline_ok():
                yield sim.timeout(0.0)
        else:
            t = sim._timeout_acquire(lat)
            yield t
            sim._timeout_release(t)
        yield from dst.nic.transfer(size)
