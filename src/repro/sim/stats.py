"""Measurement helpers: operation counters, phase timing, throughput.

Benchmarks report *simulated* time; these helpers turn raw completion counts
into the ops/sec and MB/s figures the paper's tables and plots use.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.metrics import Histogram
from .engine import Simulator

__all__ = ["OpStats", "PhaseResult", "PhaseRecorder", "BandwidthMeter",
           "kernel_counters"]


def kernel_counters(sim: Simulator) -> Dict[str, int]:
    """Scheduler-internals snapshot for microbenchmarks and perf triage.

    ``loop_events`` counts events dispatched through the run loop,
    ``inline_events`` those consumed by the immediate-resume fast path
    without a loop round-trip (DESIGN.md §10), and ``heap_pushes`` the
    timed events that actually paid a heapq push — the three numbers that
    explain where a workload's kernel time goes.
    """
    return {
        "loop_events": sim._n_steps,
        "inline_events": sim._n_inline,
        "heap_pushes": sim._seq,
    }


class OpStats:
    """Per-operation-type latency/count accumulator.

    Backed by :class:`repro.obs.Histogram` so the unified metrics layer is
    the single implementation of latency accumulation; this class keeps the
    historical attribute names (``count`` / ``total_time`` / ``max_time``)
    and adds percentile access through ``hist``.
    """

    __slots__ = ("hist",)

    def __init__(self):
        self.hist = Histogram("")

    def record(self, elapsed: float) -> None:
        self.hist.observe(elapsed)

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def total_time(self) -> float:
        return self.hist.sum

    @property
    def max_time(self) -> float:
        return self.hist.max

    @property
    def mean_time(self) -> float:
        return self.hist.mean


@dataclass
class PhaseResult:
    """Outcome of one benchmark phase (e.g. the mdtest CREATE phase)."""

    name: str
    start: float
    end: float
    ops: int
    bytes_moved: int = 0
    errors: int = 0

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    @property
    def ops_per_sec(self) -> float:
        # A zero-elapsed phase (nothing simulated) reports 0.0, not inf —
        # inf breaks strict-JSON serialization of benchmark results.
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def bandwidth_mbps(self) -> float:
        """MB/s (decimal megabytes, matching fio's reporting)."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed / 1e6


class PhaseRecorder:
    """Collects phase results and per-op stats for a benchmark run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.phases: List[PhaseResult] = []
        self.ops: Dict[str, OpStats] = defaultdict(OpStats)
        self._open: Optional[dict] = None

    def begin(self, name: str) -> None:
        if self._open is not None:
            raise RuntimeError(f"phase {self._open['name']!r} still open")
        self._open = {"name": name, "start": self.sim.now, "ops": 0,
                      "bytes": 0, "errors": 0}

    def count(self, n: int = 1, nbytes: int = 0) -> None:
        assert self._open is not None, "no phase open"
        self._open["ops"] += n
        self._open["bytes"] += nbytes

    def error(self, n: int = 1) -> None:
        assert self._open is not None, "no phase open"
        self._open["errors"] += n

    def end(self) -> PhaseResult:
        assert self._open is not None, "no phase open"
        p = self._open
        self._open = None
        result = PhaseResult(
            name=p["name"], start=p["start"], end=self.sim.now,
            ops=p["ops"], bytes_moved=p["bytes"], errors=p["errors"],
        )
        self.phases.append(result)
        return result

    def phase(self, name: str) -> Optional[PhaseResult]:
        for p in self.phases:
            if p.name == name:
                return p
        return None


@dataclass
class BandwidthMeter:
    """Tracks bytes moved through a component over simulated time."""

    sim: Simulator
    bytes_total: int = 0
    _t0: float = field(default=0.0)

    def __post_init__(self) -> None:
        self._t0 = self.sim.now

    def add(self, nbytes: int) -> None:
        self.bytes_total += nbytes

    @property
    def mbps(self) -> float:
        dt = self.sim.now - self._t0
        return self.bytes_total / dt / 1e6 if dt > 0 else 0.0
