"""Queueing primitives built on the DES kernel.

These model the shared hardware the paper's performance effects come from:
CPU cores at metadata servers and clients (:class:`Resource`), storage and
network bandwidth (:class:`BandwidthPipe`), message queues (:class:`Store`),
and mutual exclusion such as the FUSE lookup lock (:class:`Mutex`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Event, SimGen, Simulator, SimulationError

__all__ = ["Request", "Resource", "Mutex", "Store", "BandwidthPipe", "serve"]


def _span_cat(name: str) -> str:
    """Latency-attribution category for a resource, by naming convention."""
    if name.endswith(".cpu"):
        return "cpu"
    if name.endswith(".nic"):
        return "net"
    if name.endswith(".media"):
        return "media"
    return "svc"


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Triggers (with value ``self``) once the resource grants a slot. Must be
    passed back to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.granted = False


class Resource:
    """A FIFO multi-server resource with fixed capacity.

    ``capacity`` concurrent holders; further requests queue in arrival order.
    This is the building block for CPU cores, MDS service slots, and disk
    queue depth.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.span_cat = _span_cat(name)
        self._wait_name = f"wait:{name}" if name else "wait"
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if not req.granted:
            # Cancelling a queued request (e.g. the holder-to-be crashed).
            try:
                self._queue.remove(req)
            except ValueError:
                raise SimulationError("releasing a request never granted/queued")
            return
        req.granted = False
        self._in_use -= 1
        while self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req.granted = True
        req.succeed(req)

    def use(self, hold_time: float) -> SimGen:
        """Generator helper: acquire, hold for ``hold_time``, release.

        With tracing on, a contended acquisition gets a queue-wait span and
        the hold gets a span in the resource's attribution category; the
        yielded event sequence is identical either way."""
        tr = self.sim._tracer
        req = self.request()
        if tr is not None and not req.granted:
            with tr.span(self._wait_name, "queue"):
                yield req
        else:
            yield req
        try:
            if hold_time > 0:
                if tr is not None:
                    with tr.span(self.name or "hold", self.span_cat):
                        yield self.sim.timeout(hold_time)
                else:
                    yield self.sim.timeout(hold_time)
        finally:
            self.release(req)


class Mutex(Resource):
    """Capacity-1 resource (e.g. the kernel's exclusive FUSE lookup lock)."""

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=1, name=name)


class Store:
    """An unbounded FIFO channel of items; ``get`` blocks until an item exists.

    Used for RPC server request queues and background-thread work queues.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; ``None`` if empty."""
        return self._items.popleft() if self._items else None


class BandwidthPipe:
    """A shared link/device transferring bytes at a fixed aggregate rate.

    Transfers are serviced FIFO through ``lanes`` parallel channels, each
    proportionally slower as the device is shared. The FIFO model reproduces
    saturation behaviour (aggregate throughput caps at ``bytes_per_sec``)
    without the complexity of fair-share recomputation.
    """

    def __init__(
        self,
        sim: Simulator,
        bytes_per_sec: float,
        lanes: int = 1,
        name: str = "",
    ):
        if bytes_per_sec <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bytes_per_sec = float(bytes_per_sec)
        self.name = name
        self._res = Resource(sim, capacity=max(1, lanes), name=name)
        if self._res.span_cat == "svc":
            # Pipes move data: local disks etc. attribute as "media".
            self._res.span_cat = "media"
        self.bytes_moved = 0

    def transfer(self, nbytes: int) -> SimGen:
        """Generator: move ``nbytes`` through the pipe, modelling queueing."""
        if nbytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        self.bytes_moved += nbytes
        # Each lane serves at the per-lane share of the aggregate rate.
        duration = nbytes * self._res.capacity / self.bytes_per_sec
        yield from self._res.use(duration)

    @property
    def queue_length(self) -> int:
        return self._res.queue_length


def serve(resource: Resource, service_time: float) -> SimGen:
    """Acquire ``resource``, hold it for ``service_time``, release.

    The canonical "CPU does work" pattern: queueing delay emerges when the
    resource is contended.
    """
    yield from resource.use(service_time)
