"""Queueing primitives built on the DES kernel.

These model the shared hardware the paper's performance effects come from:
CPU cores at metadata servers and clients (:class:`Resource`), storage and
network bandwidth (:class:`BandwidthPipe`), message queues (:class:`Store`),
and mutual exclusion such as the FUSE lookup lock (:class:`Mutex`).

Hot-path notes (DESIGN.md §10): the uncontended zero-hold acquisition in
:meth:`Resource.use` short-circuits the whole request/grant/release Event
round-trip when the kernel can prove the grant would be processed
immediately anyway (``Simulator._inline_ok``); never-granted requests are
*lazily* cancelled instead of removed from the FIFO in O(n); and the
Request/Timeout objects used internally by ``use`` are recycled through
small freelists.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Event, SimGen, Simulator, SimulationError

__all__ = ["Request", "Resource", "Mutex", "Store", "BandwidthPipe", "serve"]

_PENDING = Event._PENDING

#: Cap on each Resource's internal Request freelist.
_REQ_POOL_MAX = 64


def _span_cat(name: str) -> str:
    """Latency-attribution category for a resource, by naming convention."""
    if name.endswith(".cpu"):
        return "cpu"
    if name.endswith(".nic"):
        return "net"
    if name.endswith(".media"):
        return "media"
    return "svc"


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Triggers (with value ``self``) once the resource grants a slot. Must be
    passed back to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "granted", "cancelled")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.granted = False
        # Lazily-cancelled queued request: skipped (and dropped) when it
        # reaches the head of the FIFO instead of being removed in O(n).
        self.cancelled = False


class Resource:
    """A FIFO multi-server resource with fixed capacity.

    ``capacity`` concurrent holders; further requests queue in arrival order.
    This is the building block for CPU cores, MDS service slots, and disk
    queue depth.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.span_cat = _span_cat(name)
        self._wait_name = f"wait:{name}" if name else "wait"
        self._in_use = 0
        self._queue: Deque[Request] = deque()
        self._n_cancelled = 0
        self._pool: list[Request] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue) - self._n_cancelled

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def _request_pooled(self) -> Request:
        """Internal variant of :meth:`request` for :meth:`use`: may return a
        recycled Request object (never exposed to user code)."""
        pool = self._pool
        if pool:
            req = pool.pop()
            req._value = _PENDING
            req._ok = None
            req._scheduled = False
            req.callbacks = []
            req.granted = False
            req.cancelled = False
        else:
            req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if not req.granted:
            # Cancelling a queued request (e.g. the holder-to-be crashed).
            # Lazy: flag it and let the grant loop skip it when it surfaces;
            # an O(n) deque.remove here was a hot spot under crash sweeps.
            if req.cancelled or req._value is not _PENDING:
                raise SimulationError("releasing a request never granted/queued")
            req.cancelled = True
            self._n_cancelled += 1
            q = self._queue
            while q and q[0].cancelled:
                q.popleft()
                self._n_cancelled -= 1
            return
        req.granted = False
        self._in_use -= 1
        q = self._queue
        while q and self._in_use < self.capacity:
            nxt = q.popleft()
            if nxt.cancelled:
                self._n_cancelled -= 1
                continue
            self._grant(nxt)

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req.granted = True
        req.succeed(req)

    def use(self, hold_time: float) -> SimGen:
        """Generator helper: acquire, hold for ``hold_time``, release.

        With tracing on, a contended acquisition gets a queue-wait span and
        the hold gets a span in the resource's attribution category; the
        yielded event sequence is identical either way."""
        sim = self.sim
        tr = sim._tracer
        if (tr is None and hold_time == 0.0 and self._in_use < self.capacity
                and sim._inline_ok()):
            # Uncontended zero-hold acquisition with nothing else runnable
            # right now: the reference kernel would grant, immediately
            # process the grant event, and release without any intervening
            # action — elide the Event round-trip entirely.
            return
        req = self._request_pooled()
        if tr is not None and not req.granted:
            with tr.span(self._wait_name, "queue"):
                yield req
        else:
            yield req
        try:
            if hold_time > 0:
                if tr is not None:
                    with tr.span(self.name or "hold", self.span_cat):
                        yield sim.timeout(hold_time)
                else:
                    t = sim._timeout_acquire(hold_time)
                    yield t
                    sim._timeout_release(t)
        finally:
            self.release(req)
            # Recycle only fully-consumed requests: processed (popped off
            # the queues, callbacks run) and not parked cancelled in the
            # FIFO. Anything else may still be referenced by the scheduler.
            if (sim._fast and req.callbacks is None and not req.cancelled
                    and len(self._pool) < _REQ_POOL_MAX):
                self._pool.append(req)


class Mutex(Resource):
    """Capacity-1 resource (e.g. the kernel's exclusive FUSE lookup lock)."""

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=1, name=name)


class Store:
    """An unbounded FIFO channel of items; ``get`` blocks until an item exists.

    Used for RPC server request queues and background-thread work queues.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; ``None`` if empty."""
        return self._items.popleft() if self._items else None


class BandwidthPipe:
    """A shared link/device transferring bytes at a fixed aggregate rate.

    Transfers are serviced FIFO through ``lanes`` parallel channels, each
    proportionally slower as the device is shared. The FIFO model reproduces
    saturation behaviour (aggregate throughput caps at ``bytes_per_sec``)
    without the complexity of fair-share recomputation.
    """

    def __init__(
        self,
        sim: Simulator,
        bytes_per_sec: float,
        lanes: int = 1,
        name: str = "",
    ):
        if bytes_per_sec <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bytes_per_sec = float(bytes_per_sec)
        self.name = name
        self._res = Resource(sim, capacity=max(1, lanes), name=name)
        if self._res.span_cat == "svc":
            # Pipes move data: local disks etc. attribute as "media".
            self._res.span_cat = "media"
        self.bytes_moved = 0

    def try_instant(self, nbytes: int) -> bool:
        """Non-generator fast path: account ``nbytes`` and return True iff
        the transfer would be elided entirely (zero serialization time,
        idle lane, nothing else runnable). Callers fall back to
        :meth:`transfer` on False. Saves the generator frame that
        :meth:`transfer`'s own short-circuit would still pay."""
        res = self._res
        sim = self.sim
        if (nbytes >= 0 and res._in_use < res.capacity
                and nbytes * res.capacity / self.bytes_per_sec == 0.0
                and sim._tracer is None and sim._inline_ok()):
            self.bytes_moved += nbytes
            return True
        return False

    def transfer(self, nbytes: int) -> SimGen:
        """Generator: move ``nbytes`` through the pipe, modelling queueing."""
        if nbytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        self.bytes_moved += nbytes
        res = self._res
        # Each lane serves at the per-lane share of the aggregate rate.
        duration = nbytes * res.capacity / self.bytes_per_sec
        sim = self.sim
        if (duration == 0.0 and res._in_use < res.capacity
                and sim._tracer is None and sim._inline_ok()):
            # Zero-serialization hop through an idle pipe: same elision as
            # the zero-hold Resource.use fast path, minus a generator frame.
            return
        yield from res.use(duration)

    @property
    def queue_length(self) -> int:
        return self._res.queue_length


def serve(resource: Resource, service_time: float) -> SimGen:
    """Acquire ``resource``, hold it for ``service_time``, release.

    The canonical "CPU does work" pattern: queueing delay emerges when the
    resource is contended.
    """
    yield from resource.use(service_time)
