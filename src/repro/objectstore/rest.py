"""Pluggable REST backends — the paper's first design goal.

"ArkFS provides a file system interface on top of any distributed object
storage system by simply registering their REST APIs." This module is that
registration surface: :class:`RestObjectStore` adapts a handful of
user-supplied REST operation handlers (GET/PUT/DELETE/HEAD/LIST, each a
simulation coroutine) into the :class:`~repro.objectstore.base.ObjectStore`
interface PRT consumes, filling in derivable operations:

* ranged GET falls back to whole-object GET + slice when no ``get_range``
  handler is registered (exactly what clients of range-less stores do);
* exclusive create falls back to HEAD + PUT when the backend has no atomic
  conditional PUT — flagged on the store so ArkFS can refuse cross-directory
  renames, which need the atomic decision record.

See ``examples/custom_backend.py`` for ArkFS running on a user-registered
backend.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.engine import SimGen, Simulator
from ..sim.network import Node
from .base import ObjectStore
from .errors import NoSuchKey

__all__ = ["RestAPIRegistry", "RestObjectStore"]

Handler = Callable[..., SimGen]


class RestAPIRegistry:
    """The REST operations a backend must (or may) provide.

    Required: ``get(key) -> bytes`` (raise :class:`NoSuchKey`),
    ``put(key, data)``, ``delete(key)``, ``list(prefix) -> [keys]``.
    Optional: ``head(key) -> size``, ``get_range(key, offset, length)``,
    ``put_if_absent(key, data) -> bool``, and the batch verbs
    ``get_many(keys) -> [bytes|None]``, ``put_many(items)``,
    ``delete_many(keys) -> removed`` (S3 DeleteObjects-style); backends
    without them get the scatter-gather emulation (concurrent singles).
    All handlers are generator coroutines run on the simulator.
    """

    def __init__(self):
        self._handlers: dict = {}

    def register(self, verb: str, handler: Handler) -> "RestAPIRegistry":
        known = {"get", "put", "delete", "list", "head", "get_range",
                 "put_if_absent", "get_many", "put_many", "delete_many"}
        if verb not in known:
            raise ValueError(f"unknown REST verb {verb!r}; pick from "
                             f"{sorted(known)}")
        self._handlers[verb] = handler
        return self

    def handler(self, verb: str) -> Optional[Handler]:
        return self._handlers.get(verb)

    def validate(self) -> None:
        missing = {"get", "put", "delete", "list"} - set(self._handlers)
        if missing:
            raise ValueError(f"backend is missing required REST operations: "
                             f"{sorted(missing)}")


class RestObjectStore(ObjectStore):
    """ObjectStore adapter over a :class:`RestAPIRegistry`."""

    def __init__(self, sim: Simulator, registry: RestAPIRegistry):
        registry.validate()
        self.sim = sim
        self.registry = registry
        #: True when exclusive create is only emulated (HEAD+PUT): callers
        #: needing real atomicity (ArkFS 2PC decisions) can check this.
        self.emulated_conditional_put = (
            registry.handler("put_if_absent") is None
        )

    # -- required verbs -----------------------------------------------------

    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        return (yield from self.registry.handler("get")(key))

    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        yield from self.registry.handler("put")(key, data)

    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        yield from self.registry.handler("delete")(key)

    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        keys: List[str] = yield from self.registry.handler("list")(prefix)
        return sorted(keys)

    # -- derivable verbs -------------------------------------------------------

    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("head")
        if h is not None:
            return (yield from h(key))
        data = yield from self.get(key, src=src)
        return len(data)

    def get_range(self, key: str, offset: int, length: int,
                  src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("get_range")
        if h is not None:
            return (yield from h(key, offset, length))
        data = yield from self.get(key, src=src)
        return data[offset : offset + length]

    def get_many(self, keys, src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("get_many")
        if h is not None:
            return (yield from h(list(keys)))
        # Emulation: concurrent single GETs (the base scatter-gather).
        return (yield from super().get_many(keys, src=src))

    def put_many(self, items, src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("put_many")
        if h is not None:
            yield from h(list(items))
            return
        yield from super().put_many(items, src=src)

    def delete_many(self, keys, src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("delete_many")
        if h is not None:
            return (yield from h(list(keys)))
        return (yield from super().delete_many(keys, src=src))

    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        h = self.registry.handler("put_if_absent")
        if h is not None:
            return (yield from h(key, data))
        # Emulation: HEAD-then-PUT. Not atomic across concurrent writers —
        # acceptable for single-writer uses; flagged for everything else.
        try:
            yield from self.head(key, src=src)
            return False
        except NoSuchKey:
            pass
        yield from self.put(key, data, src=src)
        return True
