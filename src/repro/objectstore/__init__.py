"""Object-storage substrate: the flat KV layer every file system here runs on.

* :class:`InMemoryObjectStore` — zero-latency functional reference.
* :class:`ClusterObjectStore` — sharded OSD cluster with a queueing cost
  model, parameterized by :class:`StoreProfile` (RADOS-like or S3-like).
* :class:`LocalDisk` — block-device model (EBS) for staging volumes.
"""

from .base import ObjectStore
from .cluster import ClusterObjectStore, LocalDisk
from .errors import NoSuchKey, ObjectStoreError, StoreUnavailable
from .memory import InMemoryObjectStore
from .rest import RestAPIRegistry, RestObjectStore
from .tiered import TieredObjectStore
from .profiles import (
    EBS_GP_1GBS,
    EBS_SLOW_CACHE,
    GiB,
    KiB,
    MiB,
    RADOS_EC_PROFILE,
    RADOS_PROFILE,
    S3_COLD_PROFILE,
    S3_PROFILE,
    DiskProfile,
    StoreProfile,
)

__all__ = [
    "ClusterObjectStore",
    "DiskProfile",
    "EBS_GP_1GBS",
    "EBS_SLOW_CACHE",
    "GiB",
    "InMemoryObjectStore",
    "KiB",
    "LocalDisk",
    "MiB",
    "NoSuchKey",
    "ObjectStore",
    "ObjectStoreError",
    "RADOS_EC_PROFILE",
    "RADOS_PROFILE",
    "RestAPIRegistry",
    "RestObjectStore",
    "S3_COLD_PROFILE",
    "S3_PROFILE",
    "StoreProfile",
    "StoreUnavailable",
    "TieredObjectStore",
]
