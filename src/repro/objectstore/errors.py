"""Object-storage error types (the REST-level failures PRT must handle)."""

from __future__ import annotations

__all__ = ["ObjectStoreError", "NoSuchKey", "StoreUnavailable"]


class ObjectStoreError(Exception):
    """Base class for object-storage failures."""


class NoSuchKey(ObjectStoreError):
    """GET/DELETE/HEAD on a key that does not exist (HTTP 404)."""

    def __init__(self, key: str):
        super().__init__(f"no such key: {key!r}")
        self.key = key


class StoreUnavailable(ObjectStoreError):
    """The backing store (or the responsible OSD) is down."""
