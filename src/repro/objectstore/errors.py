"""Object-storage error types (the REST-level failures PRT must handle)."""

from __future__ import annotations

__all__ = ["ObjectStoreError", "NoSuchKey", "StoreUnavailable", "TransientError"]


class ObjectStoreError(Exception):
    """Base class for object-storage failures."""


class NoSuchKey(ObjectStoreError):
    """GET/DELETE/HEAD on a key that does not exist (HTTP 404)."""

    def __init__(self, key: str):
        super().__init__(f"no such key: {key!r}")
        self.key = key


class StoreUnavailable(ObjectStoreError):
    """The backing store (or the responsible OSD) is down."""


class TransientError(ObjectStoreError):
    """A retryable failure (HTTP 503 SlowDown / RADOS EAGAIN).

    The operation did NOT apply; the client is expected to retry it with
    bounded exponential backoff. Raised by fault injection
    (:mod:`repro.faults`) and, in principle, by any timing-aware backend
    modelling overload."""
