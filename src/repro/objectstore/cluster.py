"""Scale-out object-store cluster with a queueing cost model.

Functionally this is the :class:`InMemoryObjectStore` data plane; the value
added here is *timing*: keys are hash-placed onto N simulated OSDs, each with
a bounded service queue and a media bandwidth pipe, requests pay the
profile's fixed latencies plus data-motion time, writes pay replication on
the backend, and the client-side network leg is charged against the calling
node's NIC. Saturation and queueing emerge from contention, which is what
the paper's bandwidth and scalability comparisons exercise.

Also provides :class:`LocalDisk`, the block-device model used for the EBS
staging volume in the archiving workload and the S3FS disk cache.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from ..obs.trace import span as _span
from ..sim.engine import SimGen, Simulator
from ..sim.network import Network, Node
from ..sim.resources import BandwidthPipe, Resource
from .base import ObjectStore
from .memory import InMemoryObjectStore
from .profiles import DiskProfile, StoreProfile

__all__ = ["ClusterObjectStore", "LocalDisk"]


def _timed(sim: Simulator, delay: float, name: str, cat: str) -> SimGen:
    """A timeout, wrapped in an attribution span when tracing is on."""
    tr = sim._tracer
    if tr is not None:
        with tr.span(name, cat):
            yield sim.timeout(delay)
    else:
        yield sim.timeout(delay)


class _OSD:
    """One storage daemon: a service-slot queue plus a media pipe.

    With the QoS plane installed the service queue is a tenant-weighted
    :class:`~repro.core.qos.WFQResource` instead of a FIFO."""

    def __init__(self, sim: Simulator, index: int, profile: StoreProfile,
                 qos=None):
        self.index = index
        if qos is None:
            self.queue = Resource(sim, capacity=profile.osd_queue_depth,
                                  name=f"osd{index}.q")
        else:
            from ..core.qos import WFQResource

            self.queue = WFQResource(sim, capacity=profile.osd_queue_depth,
                                     name=f"osd{index}.q",
                                     weight_of=qos.weight_of)
        # FIFO at full rate: a lone stream gets the whole device, while the
        # aggregate under contention still caps at media_bw.
        self.media = BandwidthPipe(sim, profile.media_bw,
                                   name=f"osd{index}.media")
        self.wait_name = f"wait:osd{index}.q"
        self.svc_name = f"osd{index}.svc"
        self.alive = True


class ClusterObjectStore(ObjectStore):
    """An object store sharded over ``profile.n_osds`` simulated OSDs."""

    def __init__(
        self,
        sim: Simulator,
        profile: StoreProfile,
        net: Optional[Network] = None,
        qos=None,
    ):
        self.sim = sim
        self.profile = profile
        # Fixed per-GET service time: request latency plus the cold-tier
        # time-to-first-byte (0.0 on warm profiles — timing-identical).
        self._get_fixed = profile.get_latency + profile.first_byte_latency
        self.net = net
        self.qos = qos
        self.backing = InMemoryObjectStore(sim)
        self.osds = [_OSD(sim, i, profile, qos=qos)
                     for i in range(profile.n_osds)]
        self.bytes_read = 0
        self.bytes_written = 0
        self._pending_creates: set = set()

    # -- placement -----------------------------------------------------------

    def osd_for(self, key: str) -> _OSD:
        h = zlib.crc32(key.encode("utf-8", "surrogateescape"))
        return self.osds[h % len(self.osds)]

    def replicas_for(self, key: str) -> List[_OSD]:
        h = zlib.crc32(key.encode("utf-8", "surrogateescape"))
        n = len(self.osds)
        return [self.osds[(h + i) % n] for i in range(self.profile.replication)]

    def shards_for(self, key: str) -> List[_OSD]:
        """Erasure coding: the k+m OSDs holding this object's shards."""
        assert self.profile.erasure is not None
        k, m = self.profile.erasure
        h = zlib.crc32(key.encode("utf-8", "surrogateescape"))
        n = len(self.osds)
        return [self.osds[(h + i) % n] for i in range(k + m)]

    # -- cost helpers ---------------------------------------------------------

    def _tenant(self, src: Optional[Node]) -> Optional[str]:
        """The requesting node's tenant, for WFQ attribution. ``None`` (the
        default tenant) without the QoS plane or for infrastructure ops."""
        if self.qos is None or src is None:
            return None
        return src.tenant

    def _client_leg(self, src: Optional[Node], nbytes: int) -> SimGen:
        """Charge the calling node's NIC for moving ``nbytes``; plus the
        per-stream bandwidth cap (dominant on S3)."""
        if src is not None and src.net is not None:
            yield from src.nic.transfer(nbytes)
            yield from _timed(self.sim, src.net.params.latency_s,
                              "net.lat", "net")
        if nbytes > 0 and self.profile.per_stream_bw > 0:
            stream_time = nbytes / self.profile.per_stream_bw
            nic_time = (
                nbytes / src.nic.bytes_per_sec if src is not None else 0.0
            )
            # The stream is jointly limited by NIC and per-stream cap; the
            # NIC leg above already billed nic_time, pay only the excess.
            if stream_time > nic_time:
                yield from _timed(self.sim, stream_time - nic_time,
                                  "stream.cap", "net")

    def _client_leg_many(self, src: Optional[Node],
                         sizes: Sequence[int]) -> SimGen:
        """Client-side cost of one *batched* request: the NIC still moves
        every byte, but the batch pays one stack latency (one enqueue), and
        the per-stream cap applies per concurrent stream, not to the sum."""
        total = sum(sizes)
        if src is not None and src.net is not None:
            yield from src.nic.transfer(total)
            yield from _timed(self.sim, src.net.params.latency_s,
                              "net.lat", "net")
        if sizes and self.profile.per_stream_bw > 0:
            stream_time = max(sizes) / self.profile.per_stream_bw
            nic_time = (
                total / src.nic.bytes_per_sec if src is not None else 0.0
            )
            if stream_time > nic_time:
                yield from _timed(self.sim, stream_time - nic_time,
                                  "stream.cap", "net")

    def _service(self, osd: _OSD, fixed: float, nbytes: int,
                 tenant: Optional[str] = None) -> SimGen:
        """Occupy an OSD service slot for the request, then move data
        through its media pipe."""
        tr = self.sim._tracer
        if self.qos is not None:
            # WFQ cost: slot time plus the media time this request induces.
            cost = fixed + (nbytes / self.profile.media_bw if nbytes else 0.0)
            req = osd.queue.request_wfq(tenant, cost)
        else:
            req = osd.queue.request()
        if tr is not None and not req.granted:
            with tr.span(osd.wait_name, "queue"):
                yield req
        else:
            yield req
        try:
            if fixed > 0:
                if tr is not None:
                    with tr.span(osd.svc_name, "svc"):
                        yield self.sim.timeout(fixed)
                else:
                    yield self.sim.timeout(fixed)
        finally:
            osd.queue.release(req)
        if nbytes > 0:
            yield from osd.media.transfer(nbytes)

    # -- operations ------------------------------------------------------------

    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        data = self.backing.sync_get(key)  # raise NoSuchKey before paying cost
        sp = _span(self.sim, "store.get", "store")
        try:
            tenant = self._tenant(src)
            if self.profile.erasure is not None:
                yield from self._ec_gather(key, len(data), tenant)
            else:
                osd = self.osd_for(key)
                yield from self._service(osd, self._get_fixed,
                                         len(data), tenant)
            yield from self._client_leg(src, len(data))
        finally:
            sp.close()
        self.bytes_read += len(data)
        self.backing.op_counts["get"] += 1
        return data

    def _ec_gather(self, key: str, nbytes: int,
                   tenant: Optional[str] = None) -> SimGen:
        """Read the k data shards in parallel and decode the stripe."""
        k, _m = self.profile.erasure
        shard = -(-nbytes // k)
        reads = [
            self.sim.process(
                self._service(osd, self._get_fixed, shard, tenant),
                name=f"ec-read{osd.index}")
            for osd in self.shards_for(key)[:k]
        ]
        yield self.sim.all_of(reads)
        yield from _timed(self.sim, self.profile.ec_encode_latency,
                          "ec.decode", "cpu")

    def get_range(
        self, key: str, offset: int, length: int, src: Optional[Node] = None
    ) -> SimGen:
        whole = self.backing.sync_get(key)
        data = whole[offset : offset + length]
        sp = _span(self.sim, "store.get_range", "store")
        try:
            osd = self.osd_for(key)
            yield from self._service(osd, self._get_fixed, len(data),
                                     self._tenant(src))
            yield from self._client_leg(src, len(data))
        finally:
            sp.close()
        self.bytes_read += len(data)
        self.backing.op_counts["get"] += 1
        return data

    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        sp = _span(self.sim, "store.put", "store")
        try:
            yield from self._client_leg(src, len(data))
            yield from self._server_put(key, data, self._tenant(src))
        finally:
            sp.close()

    def _server_put(self, key: str, data: bytes,
                    tenant: Optional[str] = None) -> SimGen:
        """Backend side of a PUT (replication / EC fan-out, no client leg)."""
        if self.profile.erasure is not None:
            k, m = self.profile.erasure
            shard = -(-len(data) // k)
            yield from _timed(self.sim, self.profile.ec_encode_latency,
                              "ec.encode", "cpu")
            writes = [
                self.sim.process(
                    self._service(osd, self.profile.put_latency, shard,
                                  tenant),
                    name=f"ec-write{osd.index}",
                )
                for osd in self.shards_for(key)
            ]
        else:
            # Primary-copy replication: all replicas written in parallel,
            # the request completes when the slowest acknowledges.
            writes = [
                self.sim.process(
                    self._service(osd, self.profile.put_latency, len(data),
                                  tenant),
                    name=f"put-replica{osd.index}",
                )
                for osd in self.replicas_for(key)
            ]
        yield self.sim.all_of(writes)
        self.backing.sync_put(key, data)
        self.bytes_written += len(data)
        self.backing.op_counts["put"] += 1

    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.backing.sync_head(key)  # existence check (NoSuchKey)
        sp = _span(self.sim, "store.delete", "store")
        try:
            osd = self.osd_for(key)
            yield from self._service(osd, self.profile.delete_latency, 0,
                                     self._tenant(src))
        finally:
            sp.close()
        self.backing.sync_delete(key)
        self.backing.op_counts["delete"] += 1

    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        size = self.backing.sync_head(key)
        sp = _span(self.sim, "store.head", "store")
        try:
            osd = self.osd_for(key)
            yield from self._service(osd, self.profile.head_latency, 0,
                                     self._tenant(src))
        finally:
            sp.close()
        self.backing.op_counts["head"] += 1
        return size

    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        keys = self.backing.sync_list(prefix)
        # LIST is served page by page (metadata service, not OSD media).
        pages = max(1, -(-len(keys) // self.profile.list_page))
        yield from _timed(self.sim, pages * self.profile.list_latency,
                          "store.list", "svc")
        self.backing.op_counts["list"] += 1
        return keys

    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        # The primary OSD arbitrates atomically. The reservation below makes
        # the existence check and the claim a single simulation step, so two
        # concurrent exclusive creates cannot both win.
        sp = _span(self.sim, "store.put_if_absent", "store")
        try:
            if key in self.backing or key in self._pending_creates:
                osd = self.osd_for(key)
                yield from self._service(osd, self.profile.put_latency, 0,
                                         self._tenant(src))
                return False
            self._pending_creates.add(key)
            try:
                yield from self.put(key, data, src=src)
            finally:
                self._pending_creates.discard(key)
            return True
        finally:
            sp.close()

    # -- batched operations ----------------------------------------------------
    #
    # One client enqueue for the whole batch; the per-key work still lands
    # on each key's OSD queue, so saturation behaviour under fan-out is the
    # same contention the paper's bandwidth figures exercise.

    def get_many(self, keys: Sequence[str],
                 src: Optional[Node] = None) -> SimGen:
        tr = self.sim._tracer
        sp = _span(self.sim, "store.get_many", "store")
        values = [self.backing._data.get(k) for k in keys]
        tenant = self._tenant(src)
        try:
            reads = []
            for key, data in zip(keys, values):
                if data is None:
                    continue
                if self.profile.erasure is not None:
                    gen = self._ec_gather(key, len(data), tenant)
                else:
                    gen = self._service(self.osd_for(key),
                                        self._get_fixed, len(data), tenant)
                if tr is not None:
                    # Per-item span inside the scatter-gather batch.
                    gen = tr.wrap("store.get", gen, "store", key=key)
                reads.append(self.sim.process(gen, name=f"mget:{key}"))
            if reads:
                yield self.sim.all_of(reads)
            sizes = [len(d) for d in values if d is not None]
            yield from self._client_leg_many(src, sizes)
        finally:
            sp.close()
        self.bytes_read += sum(sizes)
        self.backing.op_counts["get"] += len(sizes)
        return values

    def put_many(self, items: Sequence[Tuple[str, bytes]],
                 src: Optional[Node] = None) -> SimGen:
        if not items:
            return
        tr = self.sim._tracer
        sp = _span(self.sim, "store.put_many", "store")
        try:
            yield from self._client_leg_many(src, [len(d) for _k, d in items])
            tenant = self._tenant(src)
            writes = []
            for k, d in items:
                gen = self._server_put(k, d, tenant)
                if tr is not None:
                    gen = tr.wrap("store.put", gen, "store", key=k)
                writes.append(self.sim.process(gen, name=f"mput:{k}"))
            yield self.sim.all_of(writes)
        finally:
            sp.close()

    def delete_many(self, keys: Sequence[str],
                    src: Optional[Node] = None) -> SimGen:
        tr = self.sim._tracer
        sp = _span(self.sim, "store.delete_many", "store")
        present = [k for k in keys if k in self.backing]
        tenant = self._tenant(src)
        deletes = []
        for k in present:
            gen = self._service(self.osd_for(k), self.profile.delete_latency,
                                0, tenant)
            if tr is not None:
                gen = tr.wrap("store.delete", gen, "store", key=k)
            deletes.append(self.sim.process(gen, name=f"mdel:{k}"))
        if deletes:
            yield self.sim.all_of(deletes)
        else:
            yield self.sim.timeout(0)
        sp.close()
        removed = 0
        for key in present:
            if key in self.backing:  # not raced away while we waited
                self.backing.sync_delete(key)
                self.backing.op_counts["delete"] += 1
                removed += 1
        return removed

    # -- functional helpers (for tests/recovery assertions) --------------------

    def usage(self):
        """(object count, stored bytes) — feeds statfs."""
        return self.backing.usage()

    @property
    def capacity_bytes(self) -> float:
        return self.profile.capacity_bytes

    def __len__(self) -> int:
        return len(self.backing)

    def __contains__(self, key: str) -> bool:
        return key in self.backing


class LocalDisk:
    """A node-local block device (EBS volume): bandwidth + per-request latency.

    Used as the source/sink in the archiving scenario (the burst-buffer side)
    and as the S3FS staging cache.
    """

    def __init__(self, sim: Simulator, profile: DiskProfile, name: str = ""):
        self.sim = sim
        self.profile = profile
        self.name = name or profile.name
        self.pipe = BandwidthPipe(sim, profile.bandwidth, name=self.name)
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, nbytes: int) -> SimGen:
        yield from _timed(self.sim, self.profile.latency,
                          f"{self.name}.lat", "media")
        yield from self.pipe.transfer(nbytes)
        self.bytes_read += nbytes

    def write(self, nbytes: int) -> SimGen:
        yield from _timed(self.sim, self.profile.latency,
                          f"{self.name}.lat", "media")
        yield from self.pipe.transfer(nbytes)
        self.bytes_written += nbytes
