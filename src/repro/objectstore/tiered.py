"""Hot/cold tiered object store (ROADMAP item 4).

Fronts a cold, capacity-class store (S3 profile) with a small fast tier
(RADOS profile), the Objcache shape: an elastic staging layer between fast
local storage and cold external persistent storage.

* **Write-back staging** — data-plane objects (``d`` chunks and ``p`` pack
  containers) land in the hot tier only and are marked dirty; a background
  drain pushes them to cold in batches. Dirty bytes are bounded
  (``tier_dirty_max``): a writer that would exceed the bound waits for the
  drain, never for demotion. Metadata-plane objects (inodes, dentries,
  journal records, 2PC decisions, shard maps, extent indices) are written
  **through**: hot and cold in parallel, durable at cold before the PUT
  returns, so the journaling/commit protocol keeps its durability contract
  unchanged.
* **Demand promotion** — reads probe the hot tier first; on miss the object
  is served from cold and, when no larger than ``tier_promote_max``,
  promoted (copied hot, clean) in the background. Ranged GETs (pack
  container reads) are served as range-sized cold GETs and never promote
  the whole container.
* **Lifecycle demotion** — when resident hot bytes exceed
  ``tier_high_watermark * tier_hot_capacity``, clean objects are evicted in
  LRU order down to the low watermark. Dirty objects are never evicted
  (they exist nowhere else). Demotion runs from the maintenance path (the
  pack ticker calls :meth:`tier_maintain`) and from the tier's own drain
  ticker, so the hot tier never stalls writers on capacity.

Durability contract: hot-only state is volatile. A staged object is durable
only once drained to cold; ``fsync``/``sync`` force a drain barrier
(:meth:`tier_drain_all`) so the POSIX contract holds. Crash recovery
(fsck + crashcheck) treats the hot tier as lost (:meth:`lose_hot`) and must
recover from cold + journal alone.

Retry composition: the tier itself performs no ad-hoc retries. The cold leg
of the drain runs through the ``RetryPolicy`` handed in by the cluster
builder (the same ``store_retry_*`` parameters every other store path
uses), and the base-class batched fallbacks settle every sub-operation
before raising, so a whole-batch retry is idempotent and converges — no
double-wrapping.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Observability
from ..sim.engine import Event, Interrupt, SimGen, Simulator
from ..sim.network import Node
from ..sim.resources import Mutex
from .base import ObjectStore
from .errors import NoSuchKey

__all__ = ["TieredObjectStore", "STAGED_KINDS"]

#: Key kinds that are write-back staged (data plane). Everything else is
#: written through to cold synchronously (metadata/journal plane).
STAGED_KINDS = frozenset(("d", "p"))


class TieredObjectStore(ObjectStore):
    """A fast hot tier in front of a cold capacity tier.

    ``hot`` and ``cold`` are any two :class:`ObjectStore` implementations
    (fault wrappers included — the tier only uses the public surface plus,
    for the crash model, the synchronous ``backing`` of the hot tier).
    """

    def __init__(self, sim: Simulator, hot: ObjectStore, cold: ObjectStore,
                 hot_capacity: int = 64 * 1024 * 1024,
                 high_watermark: float = 0.9, low_watermark: float = 0.7,
                 dirty_max: int = 32 * 1024 * 1024,
                 drain_interval: float = 0.5, drain_batch: int = 32,
                 promote_max: int = 8 * 1024 * 1024, retry=None):
        self.sim = sim
        self.hot = hot
        self.cold = cold
        self.hot_capacity = int(hot_capacity)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.dirty_max = int(dirty_max)
        self.drain_interval = float(drain_interval)
        self.drain_batch = max(1, int(drain_batch))
        self.promote_max = int(promote_max)
        self._retry = retry

        # Hot-resident objects, LRU order (oldest first), key -> size.
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        # Staged-but-not-drained objects, key -> write version. A re-write
        # during a drain bumps the version so the stale drain round cannot
        # mark the key clean.
        self._dirty: Dict[str, int] = {}
        self._ver = 0
        # Keys currently owned by a background round (drain batch, demotion
        # batch, or an in-flight promotion). Client mutations on such a key
        # wait for the round's event, so a demotion can never delete bytes a
        # concurrent writer just staged and a promotion can never overwrite
        # newer data with stale cold bytes.
        self._inflight: Dict[str, Event] = {}
        # Writers blocked on the dirty-bytes bound.
        self._drain_waiters: List[Event] = []
        self._drain_lock = Mutex(sim, name="tier:drain")
        self._demote_busy = False
        self._drain_kicked = False
        # Bumped by lose_hot(); stale drain rounds check it before touching
        # bookkeeping that the crash already reset.
        self._epoch = 0
        self.hot_bytes = 0
        self.staged_dirty_bytes = 0

        m = Observability.of(sim).metrics.scope("tier")
        self._c_hits = m.counter("hits")
        self._c_misses = m.counter("misses")
        self._c_hit_bytes = m.counter("hit_bytes")
        self._c_cold_get_bytes = m.counter("cold_get_bytes")
        self._c_promotions = m.counter("promotions")
        self._c_promoted_bytes = m.counter("promoted_bytes")
        self._c_demotions = m.counter("demotions")
        self._c_demoted_bytes = m.counter("demoted_bytes")
        self._c_drained_objects = m.counter("drained_objects")
        self._c_drained_bytes = m.counter("drained_bytes")
        self._c_staged_puts = m.counter("staged_puts")
        self._c_staged_bytes = m.counter("staged_bytes")
        self._c_writethrough_puts = m.counter("writethrough_puts")
        self._c_stage_stalls = m.counter("stage_stalls")
        self._g_dirty = m.gauge("staged_dirty_bytes")
        self._g_hot = m.gauge("hot_bytes")

        self._ticker = None
        if self.drain_interval > 0:
            self._ticker = sim.process(self._tick_loop(), name="tier:tick")

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _staged(key: str) -> bool:
        return key[:1] in STAGED_KINDS

    def _touch(self, key: str) -> None:
        self._resident.move_to_end(key)

    def _wait_inflight(self, key: str) -> SimGen:
        """Block until no other round owns ``key``."""
        ev = self._inflight.get(key)
        while ev is not None:
            yield ev
            ev = self._inflight.get(key)

    def _claim(self, keys: Sequence[str], incoming: int = 0) -> SimGen:
        """Take per-key ownership for a client mutation.

        Waits out any background round touching the keys (and, for staged
        writes, the dirty-bytes bound), then claims them all with no
        intervening yield — a demotion or drain round starting afterwards
        skips claimed keys, so it can never delete bytes a concurrent
        writer just staged or mark them clean spuriously. Returns the claim
        event; release with :meth:`_unclaim`."""
        while True:
            for k in keys:
                yield from self._wait_inflight(k)
            if incoming:
                yield from self._stage_backpressure(incoming)
            if not any(k in self._inflight for k in keys):
                break
        ev = self.sim.event()
        for k in keys:
            self._inflight[k] = ev
        return ev

    def _unclaim(self, keys: Sequence[str], ev: Event) -> None:
        for k in keys:
            if self._inflight.get(k) is ev:
                del self._inflight[k]
        if not ev.triggered:
            ev.succeed()

    def _account_resident(self, key: str, size: int) -> None:
        old = self._resident.pop(key, 0)
        self._resident[key] = size
        self.hot_bytes += size - old
        self._g_hot.set(self.hot_bytes)

    def _unaccount_resident(self, key: str) -> None:
        old = self._resident.pop(key, None)
        if old is not None:
            self.hot_bytes -= old
            self._g_hot.set(self.hot_bytes)

    def _note_staged(self, key: str, size: int) -> None:
        """Bookkeeping after a staged PUT landed hot: resident + dirty."""
        prev = self._dirty.get(key)
        if prev is not None:
            # Re-write of a still-dirty key: replace its pending bytes.
            old_size = self._resident.get(key, 0)
            self.staged_dirty_bytes += size - old_size
        else:
            self.staged_dirty_bytes += size
        self._ver += 1
        self._dirty[key] = self._ver
        self._account_resident(key, size)
        self._g_dirty.set(self.staged_dirty_bytes)

    def _mark_clean(self, key: str, ver: int, size: int) -> None:
        """Drain completed for (key, ver); keep dirty if re-written since."""
        if self._dirty.get(key) != ver:
            return
        del self._dirty[key]
        self.staged_dirty_bytes -= size
        self._g_dirty.set(self.staged_dirty_bytes)

    def _release_drain_waiters(self) -> None:
        waiters, self._drain_waiters = self._drain_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def _stage_backpressure(self, incoming: int) -> SimGen:
        """Bound dirty bytes: wait for the drain, never for demotion."""
        while (self._dirty
               and self.staged_dirty_bytes + incoming > self.dirty_max):
            self._c_stage_stalls.inc()
            self._kick_drain()
            ev = self.sim.event()
            self._drain_waiters.append(ev)
            yield ev

    def _kick_drain(self) -> None:
        if self._drain_kicked:
            return
        self._drain_kicked = True

        def kicked() -> SimGen:
            try:
                yield from self._drain_rounds(src=None, drain_all=False)
            finally:
                self._drain_kicked = False

        self.sim.process(kicked(), name="tier:kick")

    # -- reads --------------------------------------------------------------

    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        if key in self._resident:
            self._c_hits.inc()
            self._touch(key)
            data = yield from self.hot.get(key, src=src)
            self._c_hit_bytes.inc(len(data))
            return data
        self._c_misses.inc()
        data = yield from self.cold.get(key, src=src)
        self._c_cold_get_bytes.inc(len(data))
        if len(data) <= self.promote_max:
            self._promote_async(key, data)
        return data

    def get_range(self, key: str, offset: int, length: int,
                  src: Optional[Node] = None) -> SimGen:
        if key in self._resident:
            self._c_hits.inc()
            self._touch(key)
            data = yield from self.hot.get_range(key, offset, length, src=src)
            self._c_hit_bytes.inc(len(data))
            return data
        # Pack-container path: fetch exactly the range from cold; whole-
        # container promotion would blow the hot budget for one extent.
        self._c_misses.inc()
        data = yield from self.cold.get_range(key, offset, length, src=src)
        self._c_cold_get_bytes.inc(len(data))
        return data

    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        if key in self._resident:
            self._touch(key)
            return (yield from self.hot.head(key, src=src))
        return (yield from self.cold.head(key, src=src))

    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        # An object exists in the tier iff it is durable in cold or staged
        # dirty in hot. Listing the raw hot backing instead would surface
        # orphan bytes a crash can strand there (a PUT landing after
        # lose_hot wiped the bookkeeping) — invisible to reads, so they
        # must be invisible to LIST as well.
        keys = yield from self.cold.list(prefix, src=src)
        dirty = [k for k in self._dirty if k.startswith(prefix)]
        return sorted(set(keys) | set(dirty))

    def _promote_async(self, key: str, data: bytes) -> None:
        """Copy a cold object hot (clean), in the background."""
        if key in self._resident or key in self._inflight:
            return
        ev = self.sim.event()
        self._inflight[key] = ev
        epoch = self._epoch

        def promote() -> SimGen:
            try:
                yield from self.hot.put(key, data, src=None)
                if self._epoch == epoch:
                    self._account_resident(key, len(data))
                    self._c_promotions.inc()
                    self._c_promoted_bytes.inc(len(data))
            finally:
                if self._inflight.get(key) is ev:
                    del self._inflight[key]
                if not ev.triggered:
                    ev.succeed()

        self.sim.process(promote(), name=f"tier:promote:{key}")

    # -- writes -------------------------------------------------------------

    def _hot_put(self, key: str, data: bytes,
                 src: Optional[Node]) -> SimGen:
        """PUT to the hot tier, redone if a crash wiped it mid-flight (the
        epoch fence): bookkeeping that follows must describe bytes that are
        actually resident after the wipe."""
        while True:
            epoch = self._epoch
            yield from self.hot.put(key, data, src=src)
            if self._epoch == epoch:
                return

    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        if self._staged(key):
            ev = yield from self._claim([key], incoming=len(data))
            try:
                yield from self._hot_put(key, data, src=src)
                self._note_staged(key, len(data))
                self._c_staged_puts.inc()
                self._c_staged_bytes.inc(len(data))
            finally:
                self._unclaim([key], ev)
            return
        # Write-through: hot and cold in parallel; durable at cold.
        ev = yield from self._claim([key])
        try:
            ph = self.sim.process(self.hot.put(key, data, src=src),
                                  name=f"tier:wt-hot:{key}")
            pc = self.sim.process(self.cold.put(key, data, src=src),
                                  name=f"tier:wt-cold:{key}")
            epoch = self._epoch
            yield self.sim.all_of([ph, pc])
            if self._epoch != epoch:
                yield from self._hot_put(key, data, src=src)
            self._account_resident(key, len(data))
            self._c_writethrough_puts.inc()
        finally:
            self._unclaim([key], ev)

    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        yield from self._wait_inflight(key)
        if key in self._resident:
            # The hot tier already holds it (possibly dirty, i.e. not yet in
            # cold) — the create must lose either way. Charge a hot probe.
            yield from self.hot.head(key, src=src)
            return False
        # Cold is the atomicity authority (exclusive-create there), so two
        # racing clients serialize exactly as on a single-tier store.
        created = yield from self.cold.put_if_absent(key, data, src=src)
        if created:
            self._promote_async(key, data)
        return created

    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        ev = yield from self._claim([key])
        try:
            in_hot = key in self._resident
            was_dirty = key in self._dirty
            if in_hot:
                if was_dirty:
                    self._mark_clean(key, self._dirty[key],
                                     self._resident.get(key, 0))
                self._unaccount_resident(key)
                try:
                    yield from self.hot.delete(key, src=src)
                except NoSuchKey:
                    pass  # crash wiped the hot tier under us
            try:
                yield from self.cold.delete(key, src=src)
            except NoSuchKey:
                # A still-dirty object may never have reached cold; that is
                # not an error as long as the object existed somewhere.
                if not in_hot:
                    raise
        finally:
            self._unclaim([key], ev)

    # -- batched ------------------------------------------------------------

    def get_many(self, keys: Sequence[str],
                 src: Optional[Node] = None) -> SimGen:
        if not keys:
            return []
        hot_keys = [k for k in keys if k in self._resident]
        cold_keys = [k for k in keys if k not in self._resident]
        procs = []
        if hot_keys:
            for k in hot_keys:
                self._touch(k)
            procs.append(self.sim.process(
                self.hot.get_many(hot_keys, src=src), name="tier:mget:hot"))
        if cold_keys:
            procs.append(self.sim.process(
                self.cold.get_many(cold_keys, src=src), name="tier:mget:cold"))
        results = yield self.sim.all_of(procs)
        hot_vals = dict(zip(hot_keys, results[0])) if hot_keys else {}
        cold_vals = (dict(zip(cold_keys, results[-1]))
                     if cold_keys else {})
        out: List[Optional[bytes]] = []
        for k in keys:
            if k in hot_vals:
                v = hot_vals[k]
                self._c_hits.inc()
                if v is not None:
                    self._c_hit_bytes.inc(len(v))
                out.append(v)
            else:
                v = cold_vals[k]
                self._c_misses.inc()
                if v is not None:
                    self._c_cold_get_bytes.inc(len(v))
                    if len(v) <= self.promote_max:
                        self._promote_async(k, v)
                out.append(v)
        return out

    def put_many(self, items: Sequence[Tuple[str, bytes]],
                 src: Optional[Node] = None) -> SimGen:
        if not items:
            return
        staged = [(k, v) for k, v in items if self._staged(k)]
        through = [(k, v) for k, v in items if not self._staged(k)]
        keys = [k for k, _ in items]
        ev = yield from self._claim(
            keys, incoming=sum(len(v) for _, v in staged))
        try:
            while True:
                epoch = self._epoch
                procs = []
                if staged:
                    procs.append(self.sim.process(
                        self.hot.put_many(staged, src=src),
                        name="tier:mput:stage"))
                if through:
                    procs.append(self.sim.process(
                        self.hot.put_many(through, src=src),
                        name="tier:mput:hot"))
                    procs.append(self.sim.process(
                        self.cold.put_many(through, src=src),
                        name="tier:mput:cold"))
                yield self.sim.all_of(procs)
                if self._epoch == epoch:
                    break
            for k, v in staged:
                self._note_staged(k, len(v))
                self._c_staged_puts.inc()
                self._c_staged_bytes.inc(len(v))
            for k, v in through:
                self._account_resident(k, len(v))
                self._c_writethrough_puts.inc()
        finally:
            self._unclaim(keys, ev)

    def delete_many(self, keys: Sequence[str],
                    src: Optional[Node] = None) -> SimGen:
        if not keys:
            return 0
        ev = yield from self._claim(list(keys))
        try:
            hot_keys = []
            removed = 0
            counted = set()
            for k in keys:
                if k in counted:
                    continue
                counted.add(k)
                if k in self._resident or k in self.cold:
                    removed += 1
                if k in self._resident:
                    hot_keys.append(k)
                    if k in self._dirty:
                        self._mark_clean(k, self._dirty[k],
                                         self._resident.get(k, 0))
                    self._unaccount_resident(k)
            procs = []
            if hot_keys:
                procs.append(self.sim.process(
                    self.hot.delete_many(hot_keys, src=src),
                    name="tier:mdel:hot"))
            procs.append(self.sim.process(
                self.cold.delete_many(list(keys), src=src),
                name="tier:mdel:cold"))
            yield self.sim.all_of(procs)
            return removed
        finally:
            self._unclaim(list(keys), ev)

    # -- background: drain + demotion ----------------------------------------

    def _tick_loop(self) -> SimGen:
        try:
            while True:
                yield self.sim.timeout(self.drain_interval)
                yield from self.tier_maintain(src=None)
        except Interrupt:
            return

    def tier_maintain(self, src: Optional[Node] = None) -> SimGen:
        """One maintenance round: drain a batch, then demote if over the
        high watermark. Called by the pack maintenance ticker and by the
        tier's own drain ticker."""
        yield from self._drain_rounds(src=src, drain_all=False)
        yield from self._demote(src=src)

    def tier_drain_all(self, src: Optional[Node] = None) -> SimGen:
        """Drain barrier: every object staged *before* this call is durable
        in cold when it returns (the fsync/sync contract)."""
        while self._dirty:
            yield from self._drain_rounds(src=src, drain_all=True)

    def _drain_rounds(self, src: Optional[Node], drain_all: bool) -> SimGen:
        req = self._drain_lock.request()
        yield req
        try:
            while self._dirty:
                n = yield from self._drain_batch(src)
                if not drain_all:
                    break
                if n == 0:
                    # Every dirty key is owned by an in-flight writer round;
                    # wait for one to finish, then re-derive the batch.
                    evs = [self._inflight[k] for k in self._dirty
                           if k in self._inflight]
                    if evs:
                        yield evs[0]
        finally:
            self._drain_lock.release(req)

    def _drain_batch(self, src: Optional[Node]) -> SimGen:
        """Push up to ``drain_batch`` dirty objects hot -> cold. Returns the
        number of keys attempted (0 = all dirty keys claimed elsewhere)."""
        batch = [(k, v) for k, v in self._dirty.items()
                 if k not in self._inflight][: self.drain_batch]
        if not batch:
            return 0
        epoch = self._epoch
        ev = self.sim.event()
        for key, _ in batch:
            self._inflight[key] = ev
        try:
            keys = [k for k, _ in batch]
            if self._retry is not None:
                values = yield from self._retry.call(
                    lambda: self.hot.get_many(keys, src=src))
            else:
                values = yield from self.hot.get_many(keys, src=src)
            items = [(k, v) for (k, _), v in zip(batch, values)
                     if v is not None]
            if items:
                yield from self._drain_cold_put(items, src)
            if self._epoch == epoch:
                sizes = {k: len(v) for k, v in items}
                for key, ver in batch:
                    # A key whose hot bytes vanished (deleted mid-round)
                    # has nothing left to drain either.
                    size = sizes.get(key, self._resident.get(key, 0))
                    self._mark_clean(key, ver, size)
                self._c_drained_objects.inc(len(items))
                self._c_drained_bytes.inc(sum(len(v) for _, v in items))
        finally:
            for key, _ in batch:
                if self._inflight.get(key) is ev:
                    del self._inflight[key]
            if not ev.triggered:
                ev.succeed()
            self._release_drain_waiters()
        return len(batch)

    def _drain_cold_put(self, items: Sequence[Tuple[str, bytes]],
                        src: Optional[Node]) -> SimGen:
        """The cold leg of the drain, under the cluster retry policy.

        ``cold.put_many`` settles every item before raising (base-class
        contract), so retrying the whole batch is idempotent."""
        if self._retry is not None:
            yield from self._retry.call(
                lambda: self.cold.put_many(items, src=src))
        else:
            yield from self.cold.put_many(items, src=src)

    def _demote(self, src: Optional[Node] = None) -> SimGen:
        """Evict clean LRU objects down to the low watermark."""
        if self._demote_busy:
            return
        if self.hot_bytes <= self.high_watermark * self.hot_capacity:
            return
        self._demote_busy = True
        ev = self.sim.event()
        epoch = self._epoch
        evict: List[str] = []
        try:
            target = self.low_watermark * self.hot_capacity
            freed = 0
            for key, size in self._resident.items():  # LRU order
                if key in self._dirty or key in self._inflight:
                    continue
                evict.append(key)
                freed += size
                if self.hot_bytes - freed <= target:
                    break
            if not evict:
                return
            demoted_bytes = 0
            for key in evict:
                self._inflight[key] = ev
                demoted_bytes += self._resident.get(key, 0)
                self._unaccount_resident(key)
            yield from self.hot.delete_many(evict, src=src)
            if self._epoch == epoch:
                self._c_demotions.inc(len(evict))
                self._c_demoted_bytes.inc(demoted_bytes)
        finally:
            self._demote_busy = False
            for key in evict:
                if self._inflight.get(key) is ev:
                    del self._inflight[key]
            if not ev.triggered:
                ev.succeed()

    # -- crash model / recovery hooks ----------------------------------------

    def tier_dirty_keys(self) -> List[str]:
        """Keys whose only durable copy is the hot tier (fsck reporting)."""
        return sorted(self._dirty)

    def lose_hot(self) -> None:
        """Crash model: the fast tier's contents are gone.

        Synchronous (called from crash handlers, which cannot yield): wipes
        the hot backing directly, resets bookkeeping, and aborts in-flight
        background rounds via the epoch fence."""
        backing = getattr(self.hot, "backing", self.hot)
        sync_list = getattr(backing, "sync_list", None)
        sync_delete = getattr(backing, "sync_delete", None)
        if sync_list is not None and sync_delete is not None:
            for key in list(sync_list("")):
                try:
                    sync_delete(key)
                except NoSuchKey:
                    pass
        self._epoch += 1
        self._resident.clear()
        self._dirty.clear()
        self.hot_bytes = 0
        self.staged_dirty_bytes = 0
        self._g_hot.set(0)
        self._g_dirty.set(0)
        for key, ev in list(self._inflight.items()):
            del self._inflight[key]
            if not ev.triggered:
                ev.succeed()
        self._release_drain_waiters()

    def stop(self) -> None:
        if self._ticker is not None and self._ticker.alive:
            self._ticker.interrupt("tier stop")

    # -- capacity / accounting ----------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        return getattr(self.cold, "capacity_bytes", 8e12)

    def usage(self):
        """(n_objects, used_bytes) of durable state plus staged-dirty."""
        n, used = 0, 0
        cold_usage = getattr(self.cold, "usage", None)
        if cold_usage is not None:
            n, used = cold_usage()
        n_dirty = 0
        dirty_bytes = 0
        for key in self._dirty:
            if key not in self.cold:
                n_dirty += 1
                dirty_bytes += self._resident.get(key, 0)
        return n + n_dirty, used + dirty_bytes

    def cold_cost_saved(self) -> float:
        """Dollars of cold GET traffic avoided by hot hits (A10 report)."""
        profile = getattr(self.cold, "profile", None)
        if profile is None:
            return 0.0
        per_req = getattr(profile, "cost_per_request", 0.0)
        per_gb = getattr(profile, "cost_per_gb", 0.0)
        hits = self._c_hits.value
        hit_bytes = self._c_hit_bytes.value
        return hits * per_req + (hit_bytes / float(1024 ** 3)) * per_gb

    def __contains__(self, key: str) -> bool:
        return key in self._resident or key in self.cold

    def __len__(self) -> int:
        return len(self.cold) + sum(1 for k in self._dirty
                                    if k not in self.cold)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self._c_hits.value,
            "misses": self._c_misses.value,
            "hit_bytes": self._c_hit_bytes.value,
            "cold_get_bytes": self._c_cold_get_bytes.value,
            "promotions": self._c_promotions.value,
            "promoted_bytes": self._c_promoted_bytes.value,
            "demotions": self._c_demotions.value,
            "demoted_bytes": self._c_demoted_bytes.value,
            "drained_objects": self._c_drained_objects.value,
            "drained_bytes": self._c_drained_bytes.value,
            "staged_puts": self._c_staged_puts.value,
            "writethrough_puts": self._c_writethrough_puts.value,
            "stage_stalls": self._c_stage_stalls.value,
            "hot_bytes": self.hot_bytes,
            "staged_dirty_bytes": self.staged_dirty_bytes,
        }
