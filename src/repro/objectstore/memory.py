"""Zero-latency dict-backed object store.

The functional reference implementation: used by unit and property tests to
exercise ArkFS semantics without any timing model, and embedded by the
cluster store as its actual data plane.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import SimGen, Simulator
from ..sim.network import Node
from .base import ObjectStore
from .errors import NoSuchKey

__all__ = ["InMemoryObjectStore"]


class InMemoryObjectStore(ObjectStore):
    """A flat in-memory key-value store with instantaneous operations.

    Keeps a sorted key index so prefix LIST is O(log n + k) rather than a
    full scan — mdtest-scale runs LIST frequently while building metatables.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._data: Dict[str, bytes] = {}
        self._index: List[str] = []  # sorted keys
        self.bytes_stored = 0
        self.capacity_bytes = 8e12  # nominal, for statfs
        self.op_counts: Dict[str, int] = {
            "get": 0, "put": 0, "delete": 0, "head": 0, "list": 0,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- synchronous core (shared with ClusterObjectStore) ------------------

    def sync_get(self, key: str) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise NoSuchKey(key) from None

    def sync_put(self, key: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"object value must be bytes, got {type(data).__name__}")
        if key not in self._data:
            bisect.insort(self._index, key)
        else:
            self.bytes_stored -= len(self._data[key])
        self._data[key] = bytes(data)
        self.bytes_stored += len(data)

    def sync_delete(self, key: str) -> None:
        if key not in self._data:
            raise NoSuchKey(key)
        self.bytes_stored -= len(self._data[key])
        del self._data[key]
        i = bisect.bisect_left(self._index, key)
        del self._index[i]

    def sync_head(self, key: str) -> int:
        try:
            return len(self._data[key])
        except KeyError:
            raise NoSuchKey(key) from None

    def usage(self):
        """(object count, stored bytes) — feeds statfs."""
        return len(self._data), self.bytes_stored

    def sync_list(self, prefix: str) -> List[str]:
        lo = bisect.bisect_left(self._index, prefix)
        hi = bisect.bisect_left(self._index, prefix + "\U0010ffff")
        return self._index[lo:hi]

    # -- coroutine interface -------------------------------------------------

    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.op_counts["get"] += 1
        yield self.sim.timeout(0)
        return self.sync_get(key)

    def get_range(
        self, key: str, offset: int, length: int, src: Optional[Node] = None
    ) -> SimGen:
        self.op_counts["get"] += 1
        yield self.sim.timeout(0)
        return self.sync_get(key)[offset : offset + length]

    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        self.op_counts["put"] += 1
        yield self.sim.timeout(0)
        self.sync_put(key, data)

    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.op_counts["delete"] += 1
        yield self.sim.timeout(0)
        self.sync_delete(key)

    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        self.op_counts["head"] += 1
        yield self.sim.timeout(0)
        return self.sync_head(key)

    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        self.op_counts["list"] += 1
        yield self.sim.timeout(0)
        return self.sync_list(prefix)

    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        self.op_counts["put"] += 1
        yield self.sim.timeout(0)
        if key in self._data:
            return False
        self.sync_put(key, data)
        return True

    # -- batched operations (instantaneous: no process fan-out needed) ------

    def get_many(self, keys: Sequence[str],
                 src: Optional[Node] = None) -> SimGen:
        self.op_counts["get"] += len(keys)
        yield self.sim.timeout(0)
        return [self._data.get(k) for k in keys]

    def put_many(self, items: Sequence[Tuple[str, bytes]],
                 src: Optional[Node] = None) -> SimGen:
        self.op_counts["put"] += len(items)
        yield self.sim.timeout(0)
        for key, data in items:
            self.sync_put(key, data)

    def delete_many(self, keys: Sequence[str],
                    src: Optional[Node] = None) -> SimGen:
        self.op_counts["delete"] += len(keys)
        yield self.sim.timeout(0)
        removed = 0
        for key in keys:
            if key in self._data:
                self.sync_delete(key)
                removed += 1
        return removed
