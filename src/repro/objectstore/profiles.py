"""Latency/bandwidth profiles for the simulated storage backends.

Centralizes every storage-timing constant used by the reproduction so the
calibration against the paper's results lives in one place (see
EXPERIMENTS.md). Two object-store profiles (RADOS-like and S3-like) match
the paper's two deployments, plus a block-device profile for the AWS EBS
volume the archiving workload reads from and S3FS stages writes on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["StoreProfile", "RADOS_PROFILE", "RADOS_EC_PROFILE", "S3_PROFILE",
           "S3_COLD_PROFILE", "DiskProfile", "EBS_GP_1GBS", "EBS_SLOW_CACHE",
           "KiB", "MiB", "GiB"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class StoreProfile:
    """Timing model for one object-storage deployment.

    ``n_osds`` controls internal parallelism; ``media_bw`` is per-OSD byte
    rate; ``per_stream_bw`` caps a single request's transfer rate (the
    dominant S3 effect that large read-ahead windows hide); latencies are the
    fixed per-request costs before data motion.
    """

    name: str
    n_osds: int
    media_bw: float                 # bytes/sec per OSD
    osd_queue_depth: int            # concurrent requests per OSD
    get_latency: float              # fixed seconds per GET
    put_latency: float              # fixed seconds per PUT
    delete_latency: float
    head_latency: float
    list_latency: float             # per LIST request (one page)
    list_page: int                  # keys per LIST page
    per_stream_bw: float            # bytes/sec cap for a single transfer
    replication: int                # copies written (costed on OSD media)
    capacity_bytes: float = 8e12    # raw capacity statfs reports
    # Erasure coding (k data + m parity shards). When set it replaces
    # replication: writes stripe size/k shards over k+m OSDs, reads gather
    # k shards — the storage-efficiency/durability trade RADOS pools offer.
    erasure: Optional[Tuple[int, int]] = None
    ec_encode_latency: float = 60e-6   # CPU per stripe encode/decode
    # Cold/archival tiers: extra time-to-first-byte a GET pays before any
    # data moves (restore/queueing inside the service), charged on top of
    # ``get_latency``. Zero for every warm profile, so adding the field is
    # timing-neutral for existing deployments.
    first_byte_latency: float = 0.0
    # Request economics (accounting only — never charged as sim time):
    # dollars per API request and per GiB retrieved, for the cost-savings
    # line tiering reports (A10).
    cost_per_request: float = 0.0
    cost_per_gb: float = 0.0

    @property
    def storage_overhead(self) -> float:
        """Raw bytes written per logical byte."""
        if self.erasure is not None:
            k, m = self.erasure
            return (k + m) / k
        return float(self.replication)


#: Ceph RADOS on the paper's 16 c5n.9xlarge storage nodes (64 OSDs over
#: 4 EBS volumes each). Low per-op latency on a LAN; 3x replication.
RADOS_PROFILE = StoreProfile(
    name="rados",
    n_osds=64,
    media_bw=280e6,          # ~EBS gp3 volume throughput per OSD
    osd_queue_depth=16,
    get_latency=0.6e-3,
    put_latency=0.9e-3,
    delete_latency=0.5e-3,
    head_latency=0.3e-3,
    list_latency=0.8e-3,
    list_page=1024,
    per_stream_bw=1.2e9,     # LAN streams are NIC-bound, not stream-bound
    replication=3,
    capacity_bytes=16 * 4 * 128e9,  # Table I: 16 nodes x 4 x 128 GB EBS
)

#: AWS S3: high fixed request latency, huge internal parallelism, modest
#: single-stream throughput (why goofys needs a 400 MB read-ahead window).
S3_PROFILE = StoreProfile(
    name="s3",
    n_osds=256,
    media_bw=3e9,   # S3 shards a hot object internally; the per-request
                    # limit is per_stream_bw, not a single server's media
    osd_queue_depth=64,
    get_latency=14e-3,
    put_latency=26e-3,
    delete_latency=10e-3,
    head_latency=9e-3,
    list_latency=40e-3,
    list_page=1000,
    per_stream_bw=90e6,
    replication=1,           # internal; not separately costed for S3
    capacity_bytes=1e15,     # S3 is effectively unbounded
)


#: Cold-capacity S3 class (infrequent-access style): same request surface
#: as S3 but a long time-to-first-byte on GET, a slimmer per-stream rate,
#: and per-request/per-GiB retrieval pricing — the tier the hot RADOS-like
#: cache fronts in the tiered configuration (ROADMAP item 4).
S3_COLD_PROFILE = StoreProfile(
    name="s3-cold",
    n_osds=256,
    media_bw=3e9,
    osd_queue_depth=64,
    get_latency=14e-3,
    put_latency=26e-3,
    delete_latency=10e-3,
    head_latency=9e-3,
    list_latency=40e-3,
    list_page=1000,
    per_stream_bw=60e6,
    replication=1,
    capacity_bytes=1e15,
    first_byte_latency=30e-3,
    cost_per_request=4e-7,   # $0.0004 / 1k GETs (infrequent-access class)
    cost_per_gb=0.01,        # $0.01 / GiB retrieved
)


#: The same RADOS cluster with a 4+2 erasure-coded pool instead of 3x
#: replication (half the raw-storage overhead, same fault tolerance of two
#: concurrent failures; writes pay the striping + encode cost).
RADOS_EC_PROFILE = StoreProfile(
    name="rados-ec42",
    n_osds=64,
    media_bw=280e6,
    osd_queue_depth=16,
    get_latency=0.6e-3,
    put_latency=0.9e-3,
    delete_latency=0.5e-3,
    head_latency=0.3e-3,
    list_latency=0.8e-3,
    list_page=1024,
    per_stream_bw=1.2e9,
    replication=1,
    capacity_bytes=16 * 4 * 128e9,
    erasure=(4, 2),
)


@dataclass(frozen=True)
class DiskProfile:
    """A local block device (AWS EBS volume attached to a client node)."""

    name: str
    bandwidth: float     # bytes/sec sequential
    latency: float       # per-request seconds
    queue_depth: int


#: The 1 GB/s EBS volume the paper stages MS-COCO datasets on (Table II).
EBS_GP_1GBS = DiskProfile(name="ebs-1GBps", bandwidth=1e9, latency=0.5e-3,
                          queue_depth=8)

#: The small, slow EBS root volume S3FS uses as its disk staging cache —
#: the paper credits this for ArkFS's 5.95x WRITE advantage over S3FS.
EBS_SLOW_CACHE = DiskProfile(name="ebs-cache", bandwidth=200e6, latency=1e-3,
                             queue_depth=4)
