"""The object-storage interface ArkFS's PRT module targets.

This is the REST surface the paper assumes of "any distributed object storage
system": flat key namespace, whole-object GET/PUT/DELETE, ranged GET, HEAD,
and prefix LIST. All operations are simulation coroutines; implementations
decide what they cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from ..sim.engine import SimGen
from ..sim.network import Node

__all__ = ["ObjectStore"]


class ObjectStore(ABC):
    """Abstract flat key-value object store.

    ``src`` on each operation names the calling node so implementations can
    charge client-side network costs; ``None`` means "do not model the client
    network leg" (used by unit tests and by server-internal traffic).
    """

    @abstractmethod
    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Return the full object value as ``bytes``. Raises NoSuchKey."""

    @abstractmethod
    def get_range(
        self, key: str, offset: int, length: int, src: Optional[Node] = None
    ) -> SimGen:
        """Return ``value[offset:offset+length]`` (ranged GET). Raises NoSuchKey."""

    @abstractmethod
    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        """Create or overwrite an object."""

    @abstractmethod
    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Remove an object. Raises NoSuchKey if absent."""

    @abstractmethod
    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Return the object size in bytes. Raises NoSuchKey if absent."""

    @abstractmethod
    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        """Return the sorted list of keys starting with ``prefix``."""

    @abstractmethod
    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        """Atomically create the object iff the key does not exist.

        Returns True on creation, False if the key already existed (the
        existing value is untouched). This is RADOS's exclusive-create /
        S3's ``If-None-Match: *`` — ArkFS's two-phase commit uses it for
        rename decision records."""

    # -- batched (scatter-gather) operations --------------------------------
    #
    # One logical request covering many keys. The default implementations
    # fan the per-key operations out as concurrent simulation processes, so
    # a batch pays one round of latency instead of one per key; timing-aware
    # backends (ClusterObjectStore) override them to additionally share the
    # client-NIC enqueue while still contending at the per-OSD queues.
    # Implementations must expose a ``sim`` attribute (they all do).

    # Partial-batch contract (all three batched fallbacks): every per-key
    # sub-operation runs to completion before the batch returns *or* raises
    # — a failure on one key never abandons a sibling mid-flight, and every
    # non-failing sub-operation is applied. On error, the first failure in
    # key order is raised once all keys settle. Batches are therefore
    # idempotent under whole-batch retry: a retry re-applies already-applied
    # items and converges, which is what lets callers layering a
    # ``RetryPolicy`` over a batch (the tiered store's drain, the cache
    # writeback) compose with ``store_retry_*`` without double-wrapping.

    def _settle(self, gens_by_key) -> SimGen:
        """Run ``(key, gen)`` pairs concurrently; settle every one. Returns
        the per-key payloads, raising the first error in key order only
        after all have completed."""

        def shield(gen: SimGen) -> SimGen:
            try:
                return ("ok", (yield from gen))
            except Exception as exc:  # settle, re-raise after the batch
                return ("err", exc)

        procs = [self.sim.process(shield(gen), name=f"mop:{k}")
                 for k, gen in gens_by_key]
        settled = yield self.sim.all_of(procs)
        for status, payload in settled:
            if status == "err":
                raise payload
        return [payload for _, payload in settled]

    def get_many(self, keys: Sequence[str],
                 src: Optional[Node] = None) -> SimGen:
        """Fetch many objects concurrently.

        Returns a list aligned with ``keys``: ``bytes`` for present objects,
        ``None`` for missing ones (a batch GET tolerates partial absence;
        callers decide whether a hole is an error)."""
        from .errors import NoSuchKey

        def one(key: str) -> SimGen:
            try:
                return (yield from self.get(key, src=src))
            except NoSuchKey:
                return None

        if not keys:
            return []
        if len(keys) == 1:
            return [(yield from one(keys[0]))]
        return (yield from self._settle([(k, one(k)) for k in keys]))

    def put_many(self, items: Sequence[Tuple[str, bytes]],
                 src: Optional[Node] = None) -> SimGen:
        """Store many objects concurrently. Every non-failing PUT is
        applied; the first error in key order is raised after all settle
        (see the partial-batch contract above)."""
        if not items:
            return
        if len(items) == 1:
            yield from self.put(items[0][0], items[0][1], src=src)
            return
        yield from self._settle(
            [(k, self.put(k, v, src=src)) for k, v in items])

    def delete_many(self, keys: Sequence[str],
                    src: Optional[Node] = None) -> SimGen:
        """Delete many objects concurrently, tolerating absent keys
        (idempotent, like journal replay). Returns the count removed."""
        from .errors import NoSuchKey

        def one(key: str) -> SimGen:
            try:
                yield from self.delete(key, src=src)
            except NoSuchKey:
                return 0
            return 1

        if not keys:
            return 0
        if len(keys) == 1:
            return (yield from one(keys[0]))
        removed = yield from self._settle([(k, one(k)) for k in keys])
        return sum(removed)

    # -- conveniences shared by all implementations -------------------------

    def exists(self, key: str, src: Optional[Node] = None) -> SimGen:
        """HEAD-based existence check."""
        from .errors import NoSuchKey

        try:
            yield from self.head(key, src=src)
        except NoSuchKey:
            return False
        return True

    def delete_prefix(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        """LIST + batched DELETE of everything under ``prefix``; returns the
        count removed."""
        keys: List[str] = yield from self.list(prefix, src=src)
        n = yield from self.delete_many(keys, src=src)
        return n
