"""The object-storage interface ArkFS's PRT module targets.

This is the REST surface the paper assumes of "any distributed object storage
system": flat key namespace, whole-object GET/PUT/DELETE, ranged GET, HEAD,
and prefix LIST. All operations are simulation coroutines; implementations
decide what they cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from ..sim.engine import SimGen
from ..sim.network import Node

__all__ = ["ObjectStore"]


class ObjectStore(ABC):
    """Abstract flat key-value object store.

    ``src`` on each operation names the calling node so implementations can
    charge client-side network costs; ``None`` means "do not model the client
    network leg" (used by unit tests and by server-internal traffic).
    """

    @abstractmethod
    def get(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Return the full object value as ``bytes``. Raises NoSuchKey."""

    @abstractmethod
    def get_range(
        self, key: str, offset: int, length: int, src: Optional[Node] = None
    ) -> SimGen:
        """Return ``value[offset:offset+length]`` (ranged GET). Raises NoSuchKey."""

    @abstractmethod
    def put(self, key: str, data: bytes, src: Optional[Node] = None) -> SimGen:
        """Create or overwrite an object."""

    @abstractmethod
    def delete(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Remove an object. Raises NoSuchKey if absent."""

    @abstractmethod
    def head(self, key: str, src: Optional[Node] = None) -> SimGen:
        """Return the object size in bytes. Raises NoSuchKey if absent."""

    @abstractmethod
    def list(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        """Return the sorted list of keys starting with ``prefix``."""

    @abstractmethod
    def put_if_absent(self, key: str, data: bytes,
                      src: Optional[Node] = None) -> SimGen:
        """Atomically create the object iff the key does not exist.

        Returns True on creation, False if the key already existed (the
        existing value is untouched). This is RADOS's exclusive-create /
        S3's ``If-None-Match: *`` — ArkFS's two-phase commit uses it for
        rename decision records."""

    # -- conveniences shared by all implementations -------------------------

    def exists(self, key: str, src: Optional[Node] = None) -> SimGen:
        """HEAD-based existence check."""
        from .errors import NoSuchKey

        try:
            yield from self.head(key, src=src)
        except NoSuchKey:
            return False
        return True

    def delete_prefix(self, prefix: str, src: Optional[Node] = None) -> SimGen:
        """LIST + DELETE everything under ``prefix``; returns count removed."""
        keys: List[str] = yield from self.list(prefix, src=src)
        for key in keys:
            yield from self.delete(key, src=src)
        return len(keys)
