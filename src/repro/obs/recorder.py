"""Flight recorder: a bounded ring buffer of recent structured events.

Subsystems feed it through the ``sim._recorder`` hook (a Simulator class
attribute that is ``None`` until :meth:`repro.obs.Observability.
enable_recorder` installs one)::

    rec = sim._recorder
    if rec is not None:
        rec.record("pack.seal", pack=pack_id, bytes=n)

so a disabled recorder costs one attribute check per hook site — the same
zero-cost-off rule the span tracer and fault hooks follow. Recording
never schedules events or reads wall-clock time, so enabling the recorder
cannot perturb any simulated outcome.

Recorded event kinds (one hook site each): root-op start/end (mount
layer), store retries and give-ups, fault injections (transient, crash,
message drop/delay, partial batch), lease revocations, journal commits,
cache writebacks, and pack seals/compactions. The ring keeps the most
recent ``capacity`` events; :meth:`FlightRecorder.to_dict` reports how
many were dropped, so a dump is honest about its window.

Dumps happen on crashcheck failures (``repro.faults.crashcheck``), on
benchmark failures (``benchmarks/conftest.py``), or on demand
(``python -m repro.bench ... --flight out.json``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Optional

__all__ = ["FlightRecorder", "RECORDER_SCHEMA", "record"]

RECORDER_SCHEMA = "arkfs-flight-recorder-v1"

#: Default ring capacity (events). Big enough to cover the interesting
#: tail before a failure, small enough to dump wholesale into JSON.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Ring buffer of ``(sim time, kind, fields)`` events for one sim."""

    __slots__ = ("sim", "capacity", "events", "recorded")

    def __init__(self, sim, capacity: int = DEFAULT_CAPACITY):
        self.sim = sim
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded (>= len(events))

    def record(self, kind: str, **fields) -> None:
        self.recorded += 1
        self.events.append((self.sim.now, kind, fields or None))

    @property
    def dropped(self) -> int:
        return self.recorded - len(self.events)

    def to_dict(self, last: Optional[int] = None) -> Dict[str, Any]:
        """JSON-safe dump of the ring (optionally only the last N events)."""
        events = list(self.events)
        if last is not None:
            events = events[-last:]
        out = []
        for t, kind, fields in events:
            ev = {"t": t, "kind": kind}
            if fields:
                ev.update(fields)
            out.append(ev)
        return {
            "schema": RECORDER_SCHEMA,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.recorded - len(self.events),
            "events": out,
        }

    def dump(self, path: str) -> int:
        """Write the ring to ``path`` as JSON; returns the event count."""
        doc = self.to_dict()
        with open(path, "w") as f:
            f.write(json.dumps(doc, allow_nan=False))
        return len(doc["events"])


def record(sim, kind: str, **fields) -> None:
    """Convenience for cold paths: record iff a recorder is installed."""
    rec = sim._recorder
    if rec is not None:
        rec.record(kind, **fields)
