"""Span tracing over simulated time.

A :class:`Span` is pure bookkeeping: opening one reads ``sim.now`` and
pushes it onto a per-process stack; closing it reads ``sim.now`` again and
appends the finished span to the tracer. No events are scheduled and no
process state is touched, so *enabling tracing can never perturb simulated
time*: every timestamp, result, and the relative order of user-visible
actions is identical with tracing on or off. The raw event *count* may
differ, though — the fast kernel's elision short-circuits (zero-hold
``Resource.use``, instant sends, zero-duration transfers; DESIGN.md §10)
are gated on ``sim._tracer is None`` so each elided round-trip can instead
materialize as real events carrying their spans. An untraced run processes
a subset of a traced run's events, never a reordering.

With tracing disabled (``sim._tracer is None``, the default) instrumented
hot paths pay a single attribute check; the :func:`span` helper returns a
shared no-op context manager, so no span objects are allocated at all.

*Sampled* tracing sits between the two: the tracer is installed as
``sim._sample_tracer`` and a deterministic per-root-op hash decides which
operations trace (:class:`RootOpObserver`). ``Process._step`` then makes
``sim._tracer`` context-local — non-``None`` exactly while stepping a
process inside a sampled op — so sampled ops get full spans and real
(elision-free) events while every other op keeps the untraced fast path.

Parenting across fan-outs: the engine records which process spawned which
(:attr:`Process.parent_proc`) and which process is currently being stepped
(:attr:`Simulator._active_proc`). A span opened in a process whose own
stack is empty parents onto the innermost open span of its spawner (cached
at first use), so the per-item spans inside a ``get_many`` scatter still
hang off the VFS read that caused them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Span", "SpanTracer", "span", "wrap", "NULL_SPAN", "ROOT_CAT",
           "RootOpObserver", "sample_threshold", "is_sampled"]

#: Category that marks operation root spans (one per VFS op).
ROOT_CAT = "vfs"

_MISSING = object()

# -- deterministic per-op sampling --------------------------------------------

#: Knuth's multiplicative-hash constant (2^32 / phi): maps sequential op
#: ids to a low-discrepancy sequence over [0, 2^32), so comparing the hash
#: against ``rate * 2^32`` samples an evenly spread, *deterministic* subset
#: of operations — the same ops every run, independent of timing.
_HASH_MULT = 2654435761
_HASH_MASK = 0xFFFFFFFF


def sample_threshold(rate: float) -> int:
    """The 32-bit threshold below which a hashed op id counts as sampled."""
    return max(0, min(1 << 32, int(float(rate) * float(1 << 32))))


def is_sampled(opid: int, threshold: int) -> bool:
    """The sampling decision for root-op ``opid`` (deterministic)."""
    return ((opid * _HASH_MULT) & _HASH_MASK) < threshold


class _NullSpan:
    """Shared no-op stand-in used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def close(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed interval in simulated time. Usable as a context manager."""

    __slots__ = ("name", "cat", "start", "end", "args", "parent", "tid",
                 "phase", "_tracer")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]], parent: Optional["Span"],
                 tid: int, phase: str, start: float):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.parent = parent
        self.tid = tid
        self.phase = phase
        self.start = start
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else
                self._tracer.sim.now) - self.start

    def close(self) -> None:
        if self.end is None:
            self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SpanTracer:
    """Collects spans for one simulation, keyed by simulation process."""

    def __init__(self, sim, pid: int = 1, pid_name: str = "sim"):
        self.sim = sim
        self.pid = pid
        self.pid_name = pid_name
        self.phase = ""
        self.spans: List[Span] = []          # closed spans, in close order
        self.tid_names: Dict[int, str] = {}
        self._stacks: Dict[Any, List[Span]] = {}   # Process (or None) -> open
        self._tids: Dict[int, int] = {}            # id(process) -> tid
        self._spawn_parent: Dict[int, Optional[Span]] = {}
        self._procs: List[Any] = []   # keeps traced processes alive so the
        self._next_tid = 1            # id()-keyed maps above stay unambiguous

    # -- opening / closing --------------------------------------------------

    def span(self, name: str, cat: str = "", **args) -> Span:
        """Open a span under the currently-stepped process."""
        proc = self.sim._active_proc
        key = id(proc) if proc is not None else None
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
            if proc is not None:
                self._procs.append(proc)
        parent = stack[-1] if stack else self._resolve_spawn_parent(proc)
        s = Span(self, name, cat, args or None, parent, self._tid_for(proc),
                 self.phase, self.sim.now)
        stack.append(s)
        return s

    def _close(self, s: Span) -> None:
        s.end = self.sim.now
        proc = self.sim._active_proc
        key = id(proc) if proc is not None else None
        stack = self._stacks.get(key)
        if stack and stack[-1] is s:
            stack.pop()
        else:
            # Closed from another frame (generator GC'd, interrupt unwind):
            # remove the span from whichever stack holds it.
            for st in self._stacks.values():
                if s in st:
                    st.remove(s)
                    break
        self.spans.append(s)

    # -- parent / thread resolution -----------------------------------------

    def _resolve_spawn_parent(self, proc) -> Optional[Span]:
        """The span that was innermost-open when ``proc``'s chain was
        spawned; cached so one process keeps a consistent parent."""
        if proc is None:
            return None
        got = self._spawn_parent.get(id(proc), _MISSING)
        if got is not _MISSING:
            return got
        parent_span: Optional[Span] = None
        p = proc.parent_proc
        while p is not None:
            stack = self._stacks.get(id(p))
            if stack:
                parent_span = stack[-1]
                break
            got = self._spawn_parent.get(id(p), _MISSING)
            if got is not _MISSING:
                parent_span = got
                break
            p = p.parent_proc
        if parent_span is None:
            stack = self._stacks.get(None)
            parent_span = stack[-1] if stack else None
        self._spawn_parent[id(proc)] = parent_span
        return parent_span

    def _tid_for(self, proc) -> int:
        if proc is None:
            self.tid_names.setdefault(0, "main")
            return 0
        tid = self._tids.get(id(proc))
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._tids[id(proc)] = tid
            self.tid_names[tid] = proc.name or f"proc{tid}"
        return tid

    # -- convenience --------------------------------------------------------

    def wrap(self, name: str, gen, cat: str = ROOT_CAT, **args):
        """Drive ``gen`` to completion inside a span (generator helper)."""
        with self.span(name, cat, **args):
            return (yield from gen)


def span(sim, name: str, cat: str = ""):
    """Open a span on ``sim``'s tracer, or the shared no-op when disabled."""
    tr = sim._tracer
    if tr is None:
        return NULL_SPAN
    return tr.span(name, cat)


def wrap(sim, gen, name: str, cat: str = ""):
    """Wrap a generator in a span; returns ``gen`` unchanged when disabled."""
    tr = sim._tracer
    if tr is None:
        return gen
    return tr.wrap(name, gen, cat)


class RootOpObserver:
    """The per-root-op pipeline behind always-on observability.

    Installed as ``sim._obs_ops`` (by :class:`repro.obs.Observability`)
    when any of sampled tracing, the slow-op log, or the flight recorder is
    enabled; the mount layer's VFS-op wrapper then routes every root
    operation through :meth:`observe` instead of the plain span wrapper.

    Sampling contract: each root op draws a sequential id and is sampled
    iff ``hash(id) < rate * 2^32`` (see :func:`is_sampled`) — a
    deterministic decision, so two runs of the same workload sample the
    same ops. A sampled op sets the current process's ``trace_on`` bit for
    its duration (spawned children inherit it), which makes
    ``sim._tracer`` context-local via ``Process._step``: every span and
    elision site below keeps its single attribute check, pays the trace /
    elision cost only inside sampled ops, and unsampled ops keep the full
    PR 6 fast path. Spans never schedule events and the elision
    short-circuits are order-preserving, so simulated results are
    bit-identical with sampling on or off.
    """

    __slots__ = ("sim", "tracer", "threshold", "rate", "slowlog", "recorder",
                 "_c_root", "_c_sampled")

    def __init__(self, sim, c_root, c_sampled):
        self.sim = sim
        self.tracer: Optional[SpanTracer] = None  # sampling tracer
        self.threshold = 0
        self.rate = 0.0
        self.slowlog = None       # repro.obs.slowlog.SlowOpLog
        self.recorder = None      # repro.obs.recorder.FlightRecorder
        self._c_root = c_root         # Counter: obs.root_ops
        self._c_sampled = c_sampled   # Counter: obs.sampled_ops

    @property
    def n_root(self) -> int:
        return self._c_root.value

    @property
    def n_sampled(self) -> int:
        return self._c_sampled.value

    def expected_sampled(self) -> int:
        """Exactly how many of the ops seen so far the hash samples."""
        t = self.threshold
        return sum(1 for i in range(self._c_root.value) if is_sampled(i, t))

    def observe(self, name: str, gen):
        """Drive one root-op generator under sampling/slowlog/recorder."""
        sim = self.sim
        c = self._c_root
        opid = c.value
        c.value = opid + 1
        tr = self.tracer
        span = None
        proc = None
        prev = False
        if tr is not None:
            if ((opid * _HASH_MULT) & _HASH_MASK) < self.threshold:
                self._c_sampled.value += 1
                proc = sim._active_proc
                if proc is not None:
                    prev = proc.trace_on
                    proc.trace_on = True
                sim._tracer = tr
                span = tr.span(name, ROOT_CAT, op=opid)
        else:
            ftr = sim._tracer
            if ftr is not None:
                # Full (unsampled) tracing installed alongside slowlog /
                # recorder: open the root span exactly as the plain
                # wrapper would.
                span = ftr.span(name, ROOT_CAT)
        rec = self.recorder
        if rec is not None:
            # FlightRecorder.record() inlined (here and for op.end): these
            # two appends run for every root op, where the call overhead
            # is measurable against the 5% always-on budget.
            rec.recorded += 1
            rec.events.append((sim.now, "op.start",
                               {"op": name, "id": opid,
                                "sampled": span is not None}))
        start = sim.now
        ok = True
        try:
            return (yield from gen)
        except BaseException:
            ok = False
            raise
        finally:
            end = sim.now
            if span is not None:
                span.close()
            if proc is not None:
                proc.trace_on = prev
                sim._tracer = tr if prev else None
            if rec is not None:
                rec.recorded += 1
                rec.events.append((end, "op.end",
                                   {"op": name, "id": opid, "ok": ok,
                                    "dur": end - start}))
            if self.slowlog is not None:
                self.slowlog.observe(name, start, end, ok, span)
