"""Cross-layer observability: span tracing, metrics, exporters.

Usage::

    from repro.obs import Observability

    sim = Simulator()
    obs = Observability.of(sim)           # lazy-attached, one per sim
    obs.enable_tracing(pid_name="arkfs")  # spans from here on
    ... build cluster, run workload ...
    write_chrome_trace("out.json", [obs.tracer])
    print(format_attribution("read latency", attribute_latency(obs.tracer)))

Components find the shared :class:`MetricsRegistry` through
``Observability.of(sim).metrics`` and pre-bind their counters; the span
tracer is only consulted through ``sim._tracer`` (``None`` while disabled),
so untraced runs pay one attribute check per instrumentation site.
Instrumentation never schedules events — enabling it cannot perturb the
simulated schedule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .export import (
    PRIMITIVE_CATS,
    attribute_latency,
    chrome_trace_events,
    format_attribution,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .trace import NULL_SPAN, ROOT_CAT, Span, SpanTracer, span, wrap

__all__ = [
    "Observability",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "Series",
    "SpanTracer", "Span", "span", "wrap", "NULL_SPAN", "ROOT_CAT",
    "chrome_trace_events", "write_chrome_trace",
    "attribute_latency", "format_attribution", "PRIMITIVE_CATS",
]

#: Default sampling period for queue-depth/utilization series (sim seconds).
DEFAULT_SAMPLE_INTERVAL = 2e-3


class Observability:
    """Per-simulation observability state: registry + tracer + samplers."""

    def __init__(self, sim):
        self.sim = sim
        self.metrics = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = None
        self._sampled: List[Tuple[str, object]] = []
        self._sampling = False

    @classmethod
    def of(cls, sim) -> "Observability":
        """The sim's Observability, attached on first use."""
        obs = getattr(sim, "_obs", None)
        if obs is None:
            obs = cls(sim)
            sim._obs = obs
        return obs

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self, pid: int = 1,
                       pid_name: str = "sim") -> SpanTracer:
        if self.tracer is None:
            self.tracer = SpanTracer(self.sim, pid=pid, pid_name=pid_name)
            self.sim._tracer = self.tracer
        return self.tracer

    def disable_tracing(self) -> None:
        self.sim._tracer = None
        self.tracer = None

    # -- periodic resource sampling ------------------------------------------

    def sample_resource(self, label: str, res) -> None:
        """Register a Resource or BandwidthPipe for periodic queue-depth and
        utilization sampling (call :meth:`start_sampling` afterwards)."""
        self._sampled.append((label, res))

    def start_sampling(self,
                       interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        """Start the sampler process (idempotent; no-op without targets).

        The sampler only *reads* resource state, so while it does add heap
        events, it cannot change any application-visible outcome — pairwise
        ordering of application events is preserved.
        """
        if self._sampling or not self._sampled:
            return
        self._sampling = True
        self.sim.process(self._sample_loop(interval), name="obs.sampler")

    def _sample_loop(self, interval: float):
        # Pre-bind (series, resource) pairs: no registry lookups per tick.
        bound = []
        for label, obj in self._sampled:
            res = getattr(obj, "_res", obj)  # unwrap BandwidthPipe
            bound.append((self.metrics.series(label + ".qdepth"),
                          self.metrics.series(label + ".util"), res))
        sim = self.sim
        while True:
            now = sim.now
            for qd, util, res in bound:
                qd.add(now, res.queue_length)
                cap = getattr(res, "capacity", 0)
                if cap:
                    util.add(now, res.in_use / cap)
            yield sim.timeout(interval)
