"""Cross-layer observability: span tracing, metrics, exporters.

Usage::

    from repro.obs import Observability

    sim = Simulator()
    obs = Observability.of(sim)           # lazy-attached, one per sim
    obs.enable_tracing(pid_name="arkfs")  # spans from here on
    ... build cluster, run workload ...
    write_chrome_trace("out.json", [obs.tracer])
    print(format_attribution("read latency", attribute_latency(obs.tracer)))

Components find the shared :class:`MetricsRegistry` through
``Observability.of(sim).metrics`` and pre-bind their counters; the span
tracer is only consulted through ``sim._tracer`` (``None`` while disabled),
so untraced runs pay one attribute check per instrumentation site.
Instrumentation never schedules events — enabling it cannot perturb the
simulated schedule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .export import (
    PRIMITIVE_CATS,
    attribute_latency,
    chrome_trace_events,
    format_attribution,
    root_waterfalls,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .recorder import RECORDER_SCHEMA, FlightRecorder
from .slowlog import SLOWLOG_SCHEMA, SlowOpLog
from .trace import (
    NULL_SPAN,
    ROOT_CAT,
    RootOpObserver,
    Span,
    SpanTracer,
    is_sampled,
    sample_threshold,
    span,
    wrap,
)

__all__ = [
    "Observability",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "Series",
    "SpanTracer", "Span", "span", "wrap", "NULL_SPAN", "ROOT_CAT",
    "RootOpObserver", "sample_threshold", "is_sampled",
    "SlowOpLog", "SLOWLOG_SCHEMA",
    "FlightRecorder", "RECORDER_SCHEMA",
    "chrome_trace_events", "write_chrome_trace",
    "attribute_latency", "root_waterfalls",
    "format_attribution", "PRIMITIVE_CATS",
]

#: Default sampling period for queue-depth/utilization series (sim seconds).
DEFAULT_SAMPLE_INTERVAL = 2e-3


class Observability:
    """Per-simulation observability state: registry + tracer + samplers."""

    def __init__(self, sim):
        self.sim = sim
        self.metrics = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = None
        self.sample_rate = 0.0   # 1.0 = full tracing, 0 < r < 1 = sampled
        self.slowlog: Optional[SlowOpLog] = None
        self.recorder: Optional[FlightRecorder] = None
        self._op_observer: Optional[RootOpObserver] = None
        self._sampled: List[Tuple[str, object]] = []
        self._sampling = False

    @classmethod
    def of(cls, sim) -> "Observability":
        """The sim's Observability, attached on first use."""
        obs = getattr(sim, "_obs", None)
        if obs is None:
            obs = cls(sim)
            sim._obs = obs
        return obs

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self, pid: int = 1, pid_name: str = "sim",
                       sample_rate: float = 1.0) -> SpanTracer:
        """Install a span tracer.

        ``sample_rate >= 1`` is *full* tracing: every span site is active
        (``sim._tracer`` set globally), exactly the pre-sampling behavior.
        ``0 < sample_rate < 1`` is *sampled* tracing: the tracer goes in as
        ``sim._sample_tracer`` and only root ops picked by the
        deterministic hash (and their child processes) see a non-``None``
        ``sim._tracer``. Idempotent: an already-installed tracer is never
        replaced (in particular a full tracer is never downgraded to a
        sampled one by a later default-rate call).
        """
        if self.tracer is None:
            self.tracer = SpanTracer(self.sim, pid=pid, pid_name=pid_name)
            if sample_rate >= 1.0:
                self.sample_rate = 1.0
                self.sim._tracer = self.tracer
            else:
                self.sample_rate = float(sample_rate)
                ob = self._ensure_op_observer()
                ob.tracer = self.tracer
                ob.rate = self.sample_rate
                ob.threshold = sample_threshold(self.sample_rate)
                self.sim._sample_tracer = self.tracer
        if self.slowlog is not None:
            self.slowlog.tracer = self.tracer
        return self.tracer

    def disable_tracing(self) -> None:
        self.sim._tracer = None
        self.sim._sample_tracer = None
        self.tracer = None
        self.sample_rate = 0.0
        ob = self._op_observer
        if ob is not None:
            ob.tracer = None
            ob.threshold = 0
            ob.rate = 0.0

    # -- slow-op log / flight recorder ----------------------------------------

    def enable_slowlog(self, **kwargs) -> SlowOpLog:
        """Install the slow-op log (idempotent; kwargs → SlowOpLog)."""
        if self.slowlog is None:
            self.slowlog = SlowOpLog(self.sim, **kwargs)
            self._ensure_op_observer().slowlog = self.slowlog
        # Waterfalls need whichever tracer is live (full or sampled).
        self.slowlog.tracer = self.tracer
        return self.slowlog

    def enable_recorder(self, capacity: Optional[int] = None
                        ) -> FlightRecorder:
        """Install the flight recorder (idempotent) as ``sim._recorder``."""
        if self.recorder is None:
            if capacity is None:
                self.recorder = FlightRecorder(self.sim)
            else:
                self.recorder = FlightRecorder(self.sim, capacity=capacity)
            self.sim._recorder = self.recorder
            self._ensure_op_observer().recorder = self.recorder
        return self.recorder

    def _ensure_op_observer(self) -> RootOpObserver:
        ob = self._op_observer
        if ob is None:
            ob = RootOpObserver(self.sim,
                                self.metrics.counter("obs.root_ops"),
                                self.metrics.counter("obs.sampled_ops"))
            self._op_observer = ob
            self.sim._obs_ops = ob
        return ob

    # -- periodic resource sampling ------------------------------------------

    def sample_resource(self, label: str, res) -> None:
        """Register a Resource or BandwidthPipe for periodic queue-depth and
        utilization sampling (call :meth:`start_sampling` afterwards)."""
        self._sampled.append((label, res))

    def start_sampling(self,
                       interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        """Start the sampler process (idempotent; no-op without targets).

        The sampler only *reads* resource state, so while it does add heap
        events, it cannot change any application-visible outcome — pairwise
        ordering of application events is preserved.
        """
        if self._sampling or not self._sampled:
            return
        self._sampling = True
        self.sim.process(self._sample_loop(interval), name="obs.sampler")

    def _sample_loop(self, interval: float):
        # Pre-bind (series, resource) pairs: no registry lookups per tick.
        bound = []
        for label, obj in self._sampled:
            res = getattr(obj, "_res", obj)  # unwrap BandwidthPipe
            bound.append((self.metrics.series(label + ".qdepth"),
                          self.metrics.series(label + ".util"), res))
        sim = self.sim
        while True:
            now = sim.now
            for qd, util, res in bound:
                qd.add(now, res.queue_length)
                cap = getattr(res, "capacity", 0)
                if cap:
                    util.add(now, res.in_use / cap)
            yield sim.timeout(interval)
