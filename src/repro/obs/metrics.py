"""Unified metrics: counters, gauges, histograms, and time series.

One :class:`MetricsRegistry` per simulation (attached lazily through
:class:`repro.obs.Observability`) replaces the ad-hoc ``stats`` dicts that
used to be sprinkled through the cache and journal. Components pre-bind
their metric objects at construction time, so the hot-path cost of a count
is one attribute increment — no dict lookups, no string formatting.

Histograms use fixed log-spaced buckets (so percentile queries are O(#
buckets), independent of sample count) while tracking exact count / sum /
min / max, which keeps means exact and percentiles monotone.

Everything here is measured in *simulated* units; nothing reads wall-clock
time.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Series", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> int:
        return self.value


class Gauge:
    """A value that goes up and down; tracks its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, v) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def add(self, delta) -> None:
        self.set(self.value + delta)

    def track(self, v) -> None:
        """Record an observation for the high-water mark only."""
        if v > self.max_value:
            self.max_value = v

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max_value}


def _log_bounds(lo: float, hi: float, per_decade: int) -> List[float]:
    n = int(math.ceil((math.log10(hi) - math.log10(lo)) * per_decade)) + 1
    return [lo * 10 ** (i / per_decade) for i in range(n)]


class Histogram:
    """Fixed log-spaced buckets with exact count/sum/min/max.

    The default range (1 ns .. 10 ks) covers every simulated latency this
    repository produces; observations outside it clamp to the edge buckets.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_counts")

    LO = 1e-9
    HI = 1e4
    PER_DECADE = 20
    BOUNDS = _log_bounds(LO, HI, PER_DECADE)  # upper edge of each bucket
    _LOG_LO = math.log10(LO)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self._counts = [0] * len(Histogram.BOUNDS)

    def _index(self, v: float) -> int:
        if v <= Histogram.LO:
            return 0
        i = int((math.log10(v) - Histogram._LOG_LO) * Histogram.PER_DECADE)
        return min(max(i, 0), len(self._counts) - 1)

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        # _index() inlined: observe is on the per-root-op hot path of the
        # always-on slow-op log, where the method-call overhead shows.
        if v <= 1e-9:  # Histogram.LO
            i = 0
        else:
            i = int((math.log10(v) - Histogram._LOG_LO)
                    * Histogram.PER_DECADE)
            n = len(self._counts) - 1
            if i > n:
                i = n
            elif i < 0:
                i = 0
        self._counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile, ``q`` in ``[0, 1]``.

        O(#buckets) scan of the fixed log-spaced bucket counts — no raw
        series is kept or consulted, so the cost is independent of how
        many values were observed. Exact at both edges: ``quantile(0)``
        is the tracked min and ``quantile(1)`` the tracked max, even when
        observations clamped into the edge buckets; interior quantiles
        interpolate within their bucket and are clamped to ``[min, max]``
        (which keeps the result monotone in ``q``)."""
        if not self.count:
            return 0.0
        if q >= 1.0:
            # Exact even when the max clamped into the top bucket.
            return self.max
        if q <= 0.0:
            return self.min
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self._counts):
            if not n:
                continue
            if cum + n >= rank:
                lo = Histogram.BOUNDS[i - 1] if i else 0.0
                hi = Histogram.BOUNDS[i]
                frac = (rank - cum) / n
                v = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(self.min, min(self.max, v))
            cum += n
        return self.max

    def percentile(self, q: float) -> float:
        """Interpolated percentile (0..100); exact at the min/max edges."""
        return self.quantile(q / 100.0)

    def quantile_upper(self, q: float) -> float:
        """Conservative quantile upper bound for trigger comparisons.

        The quantile is only known to bucket resolution, so this returns
        a boundary strictly above everything in the rank's bucket *plus
        one bucket of slack* (~12% with the default 20-per-decade
        spacing): a strict ``>`` test against it cannot fire on bucket
        quantization or float jitter at a bucket edge, while genuinely
        distant tail values still clear it easily. This is what makes it
        the right trigger for the slow-op log's rolling-p99 rule —
        uniform latencies never self-log. Returns ``inf`` when the rank
        lands at the top of the bucket range (the static threshold still
        applies there)."""
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self._counts):
            if not n:
                continue
            cum += n
            if cum >= rank:
                # _index() floors, so bucket i spans [BOUNDS[i],
                # BOUNDS[i+1]); +1 more bucket is the jitter slack.
                j = i + 2
                if j < len(Histogram.BOUNDS):
                    return Histogram.BOUNDS[j]
                return math.inf
        return math.inf

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Series:
    """A decimating time series of ``(t, value)`` samples.

    Memory is bounded: once ``MAX_POINTS`` samples accumulate, every other
    point is dropped and the sampling stride doubles, so an arbitrarily
    long run keeps an evenly spread ~thousand-point sketch.
    """

    __slots__ = ("name", "times", "values", "_stride", "_tick")

    MAX_POINTS = 2048

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self._stride = 1
        self._tick = 0

    def add(self, t: float, v: float) -> None:
        self._tick += 1
        if self._tick % self._stride:
            return
        self.times.append(t)
        self.values.append(v)
        if len(self.times) >= Series.MAX_POINTS:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self._stride *= 2

    def to_dict(self) -> Dict[str, List[float]]:
        return {"t": self.times, "v": self.values}


class _Scope:
    """A prefixed view onto a registry (per-component namespacing)."""

    __slots__ = ("_reg", "_prefix")

    def __init__(self, reg: "MetricsRegistry", prefix: str):
        self._reg = reg
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._reg.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._reg.gauge(self._prefix + name)

    def histogram(self, name: str) -> Histogram:
        return self._reg.histogram(self._prefix + name)

    def series(self, name: str) -> Series:
        return self._reg.series(self._prefix + name)


class MetricsRegistry:
    """Name-addressed metric store; metrics are created on first use."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    def scope(self, prefix: str) -> _Scope:
        """A view that prefixes every metric name with ``prefix + '.'``."""
        return _Scope(self, prefix + "." if prefix else "")

    def get(self, name: str):
        return self._metrics.get(name)

    def items(self):
        """``(name, metric)`` pairs, insertion-ordered."""
        return self._metrics.items()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe snapshot grouped by metric type."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "series": {},
        }
        groups: List[Tuple[type, str]] = [
            (Counter, "counters"), (Gauge, "gauges"),
            (Histogram, "histograms"), (Series, "series"),
        ]
        for name in sorted(self._metrics):
            m = self._metrics[name]
            for cls, key in groups:
                if isinstance(m, cls):
                    out[key][name] = m.to_dict()
                    break
        return out
