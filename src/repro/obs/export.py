"""Exporters: Chrome trace-event JSON and per-phase latency attribution.

The trace export emits ``ph: "X"`` (complete) events with microsecond
timestamps of *simulated* time, one Chrome "thread" per simulation process
and one "process" per tracer (per file-system kind in a bench run), plus
``M`` metadata records naming both. The output loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Latency attribution answers "where did each operation's simulated time
go?": for every root (VFS-op) span, the intervals of its *primitive*
descendant spans — CPU holds, NIC/media transfers, network latency, queue
waits, OSD/MDS service — are clipped to the root, unioned per category,
and aggregated per benchmark phase. Whatever the union does not cover is
reported honestly as "unattributed". Categories may overlap in wall time
under parallelism (a fan-out can use the NIC and OSD media at once), so
per-category percentages can sum past 100%; the attributed/unattributed
split is computed on the merged union and always sums to 100%.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .trace import ROOT_CAT, Span, SpanTracer

__all__ = [
    "PRIMITIVE_CATS",
    "chrome_trace_events",
    "write_chrome_trace",
    "attribute_latency",
    "root_waterfalls",
    "format_attribution",
]

#: Leaf span categories that attribute simulated time to a component.
PRIMITIVE_CATS = ("cpu", "net", "queue", "svc", "media", "fuse")


# -- Chrome trace-event JSON --------------------------------------------------


def chrome_trace_events(
        tracers: Iterable[SpanTracer],
        counters: Optional[Iterable[Tuple[int, str, Any]]] = None,
) -> List[dict]:
    """Build the trace-event list: ``M`` metadata, ``X`` complete events,
    ``s``/``f`` flow arrows for cross-thread parent/child edges, and
    (optionally) ``C`` counter tracks from ``(pid, name, Series)`` triples.

    Spans still open when the simulation ended are not in ``tracer.spans``
    and are therefore omitted — the export never invents an end time. A
    closed child whose parent is such an open span still exports; only the
    flow arrow is dropped (there is no parent-side timestamp to anchor it).
    """
    events: List[dict] = []
    flow_id = 0
    for tracer in tracers:
        pid = tracer.pid
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": tracer.pid_name}})
        for tid in sorted(tracer.tid_names):
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid,
                           "args": {"name": tracer.tid_names[tid]}})
        for s in tracer.spans:
            if s.end is None:
                continue
            ev: Dict[str, Any] = {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "ts": round(s.start * 1e6, 3),
                "dur": round((s.end - s.start) * 1e6, 3),
                "pid": pid,
                "tid": s.tid,
            }
            args = dict(s.args) if s.args else {}
            if s.phase:
                args["phase"] = s.phase
            if args:
                ev["args"] = args
            events.append(ev)
            p = s.parent
            if p is None or p.tid == s.tid or p.end is None:
                continue
            # Cross-thread edge: a flow arrow from the parent span to the
            # child's start. In a fan-out the parent may close before the
            # child even starts; clamp the parent-side timestamp into the
            # parent's own interval (and at or before the child-side one)
            # so the arrow stays well-formed either way.
            flow_id += 1
            ts_f = s.start
            ts_s = min(max(ts_f, p.start), p.end)
            events.append({"ph": "s", "id": flow_id, "name": s.name,
                           "cat": "flow", "pid": pid, "tid": p.tid,
                           "ts": round(ts_s * 1e6, 3)})
            events.append({"ph": "f", "bp": "e", "id": flow_id,
                           "name": s.name, "cat": "flow", "pid": pid,
                           "tid": s.tid, "ts": round(ts_f * 1e6, 3)})
    if counters:
        for pid, name, series in counters:
            for t, v in zip(series.times, series.values):
                events.append({"ph": "C", "name": name, "pid": pid,
                               "tid": 0, "ts": round(t * 1e6, 3),
                               "args": {"value": v}})
    return events


def write_chrome_trace(
        path: str, tracers: Iterable[SpanTracer],
        counters: Optional[Iterable[Tuple[int, str, Any]]] = None) -> int:
    """Write a Perfetto-loadable trace; returns the number of events."""
    events = chrome_trace_events(tracers, counters=counters)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    # allow_nan=False: a NaN/Infinity would produce non-standard JSON that
    # Perfetto rejects — fail loudly here instead.
    text = json.dumps(doc, allow_nan=False)
    with open(path, "w") as f:
        f.write(text)
    return len(events)


# -- latency attribution ------------------------------------------------------


def _top_root(s: Span) -> Optional[Span]:
    """Outermost root-category ancestor of ``s`` (itself included)."""
    top = None
    cur: Optional[Span] = s
    while cur is not None:
        if cur.cat == ROOT_CAT:
            top = cur
        cur = cur.parent
    return top


def _union(intervals: List[Tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_a, cur_b = intervals[0]
    for a, b in intervals[1:]:
        if a > cur_b:
            total += cur_b - cur_a
            cur_a, cur_b = a, b
        elif b > cur_b:
            cur_b = b
    return total + (cur_b - cur_a)


def attribute_latency(tracer: SpanTracer) -> Dict[str, Dict[str, Any]]:
    """Per-phase latency breakdown over the tracer's closed spans.

    Returns ``{phase: {"ops", "total_s", "by_cat": {cat: seconds},
    "attributed_s", "unattributed_s"}}`` where seconds are the per-root
    clipped interval unions summed over the phase's root spans.
    """
    primitive = set(PRIMITIVE_CATS)
    roots: List[Span] = []
    per_root: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
    for s in tracer.spans:
        if s.end is None:
            continue
        if s.cat == ROOT_CAT:
            if _top_root(s) is s:
                roots.append(s)
            continue
        if s.cat not in primitive:
            continue
        r = _top_root(s)
        if r is None or r.end is None:
            continue
        a, b = max(s.start, r.start), min(s.end, r.end)
        if b <= a:
            continue
        per_root.setdefault(id(r), {}).setdefault(s.cat, []).append((a, b))

    out: Dict[str, Dict[str, Any]] = {}
    for r in roots:
        row = out.setdefault(r.phase or "-", {
            "ops": 0, "total_s": 0.0, "attributed_s": 0.0,
            "unattributed_s": 0.0, "by_cat": {},
        })
        dur = (r.end or r.start) - r.start
        row["ops"] += 1
        row["total_s"] += dur
        cats = per_root.get(id(r), {})
        merged: List[Tuple[float, float]] = []
        for cat, ivs in cats.items():
            row["by_cat"][cat] = row["by_cat"].get(cat, 0.0) + _union(list(ivs))
            merged.extend(ivs)
        covered = min(_union(merged), dur)
        row["attributed_s"] += covered
        row["unattributed_s"] += dur - covered
    return out


def root_waterfalls(tracer: SpanTracer,
                    roots: Iterable[Span]) -> Dict[int, Dict[str, float]]:
    """Per-category clipped-union seconds for specific root spans.

    Returns ``{id(root): {cat: seconds}}`` for each requested root that
    has at least one primitive descendant — the single-op analogue of
    :func:`attribute_latency`, used by the slow-op log to say where one
    slow operation's time went. One pass over the tracer's closed spans
    regardless of how many roots are asked for.
    """
    primitive = set(PRIMITIVE_CATS)
    want = {id(r) for r in roots}
    per_root: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
    for s in tracer.spans:
        if s.end is None or s.cat not in primitive:
            continue
        r = _top_root(s)
        if r is None or id(r) not in want or r.end is None:
            continue
        a, b = max(s.start, r.start), min(s.end, r.end)
        if b <= a:
            continue
        per_root.setdefault(id(r), {}).setdefault(s.cat, []).append((a, b))
    return {rid: {cat: _union(ivs) for cat, ivs in cats.items()}
            for rid, cats in per_root.items()}


def format_attribution(title: str,
                       attrib: Dict[str, Dict[str, Any]]) -> str:
    """Render an attribution table: per phase, % of op latency per
    component (categories overlap under parallelism) plus unattributed."""
    cats = [c for c in PRIMITIVE_CATS
            if any(c in row["by_cat"] for row in attrib.values())]
    out = [title]
    header = f"  {'phase':<10} {'ops':>7} {'total(s)':>10}"
    header += "".join(f"{c + '%':>8}" for c in cats) + f"{'unattr%':>8}"
    out.append(header)
    for phase in sorted(attrib):
        row = attrib[phase]
        total = row["total_s"]
        line = f"  {phase:<10} {row['ops']:>7} {total:>10.3f}"
        for c in cats:
            pct = 100.0 * row["by_cat"].get(c, 0.0) / total if total else 0.0
            line += f"{pct:>7.1f} "
        unattr = 100.0 * row["unattributed_s"] / total if total else 0.0
        line += f"{unattr:>7.1f} "
        out.append(line)
    return "\n".join(out)
