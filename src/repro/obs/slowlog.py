"""Slow-op log: bounded record of the slowest root operations.

Every root (VFS) operation's simulated latency is observed into a per-op-
type log-bucketed histogram; an op is logged as *slow* when it exceeds
either a static per-op-type threshold or the rolling p99 of its type
(once enough samples exist for the percentile to mean anything). Only the
``keep`` slowest entries per op type are retained, so memory is bounded
regardless of run length.

When sampled tracing is active, a slow op that happened to be sampled
carries its root span, and :meth:`SlowOpLog.to_dict` attaches a
*phase-attributed waterfall* — per-category (cpu/net/queue/svc/media/...)
clipped-union seconds, computed lazily from the tracer's spans via the
PR 2 attribution machinery — so the dump answers "where did this slow
op's time go?", not just "it was slow". Unsampled slow ops still log
their latency and rank; they simply have no waterfall.

The hot-path cost per root op is one histogram observe plus two float
compares; entries are only allocated for ops that qualify as slow.
"""

from __future__ import annotations

import heapq
import json
import math
from typing import Any, Dict, List, Optional

from .metrics import Histogram

__all__ = ["SlowOpLog", "SLOWLOG_SCHEMA"]

SLOWLOG_SCHEMA = "arkfs-slowlog-v1"

#: Default static threshold (simulated seconds): any op slower than this
#: is always logged, even before its histogram has enough samples.
DEFAULT_THRESHOLD_S = 0.050

#: Samples of an op type needed before the rolling p99 triggers entries.
DEFAULT_MIN_COUNT = 64

#: Slowest entries retained per op type.
DEFAULT_KEEP = 32


class SlowOpLog:
    """Per-op-type latency histograms plus a bounded slowest-K log."""

    __slots__ = ("sim", "default_threshold", "thresholds", "min_count",
                 "keep", "tracer", "n_slow", "_hists", "_ops", "_slow",
                 "_seq")

    #: Recompute the cached p99 trigger bound every this many observations
    #: of an op type (power of two; the per-op fast path masks against
    #: ``_P99_REFRESH - 1``). The rolling p99 moves slowly, the bound
    #: carries a bucket of slack, and the refresh schedule depends only on
    #: the observation count — so the amortization changes nothing about
    #: which runs log which ops, it only keeps the O(#buckets) quantile
    #: scan off the per-op hot path.
    _P99_REFRESH = 32

    def __init__(self, sim, default_threshold: float = DEFAULT_THRESHOLD_S,
                 thresholds: Optional[Dict[str, float]] = None,
                 min_count: int = DEFAULT_MIN_COUNT,
                 keep: int = DEFAULT_KEEP):
        self.sim = sim
        self.default_threshold = default_threshold
        self.thresholds = dict(thresholds or {})  # per-op-type overrides
        self.min_count = min_count
        self.keep = keep
        self.tracer = None     # set when a tracer runs alongside
        self.n_slow = 0        # total slow entries observed (incl. evicted)
        self._hists: Dict[str, Histogram] = {}
        # op -> [histogram, resolved threshold, cached p99 upper bound];
        # one dict hit per observe instead of three.
        self._ops: Dict[str, list] = {}
        # op -> min-heap of (dur, seq, entry-dict, root-span) keeping the
        # ``keep`` slowest; seq breaks duration ties deterministically.
        self._slow: Dict[str, List[tuple]] = {}
        self._seq = 0

    # -- hot path -----------------------------------------------------------

    def observe(self, op: str, start: float, end: float, ok: bool,
                root) -> None:
        """Record one finished root op; log it if slow. ``root`` is the
        op's root span when it was sampled (else None)."""
        dur = end - start
        ent = self._ops.get(op)
        if ent is None:
            h = Histogram(op)
            self._hists[op] = h
            # The p99 bound starts at +inf: the rolling trigger is inert
            # until the first refresh, at the first multiple of
            # ``_P99_REFRESH`` observations on or after ``min_count``.
            ent = self._ops[op] = [
                h, self.thresholds.get(op, self.default_threshold), math.inf]
        else:
            h = ent[0]
        why = None
        if dur >= ent[1]:
            why = "threshold"
        elif dur > ent[2]:
            # Judged against a cached bound over *prior* ops (observe
            # comes after), so a lone tail value is compared to history,
            # not to itself; the bucket-upper-bound quantile means uniform
            # latencies (even float-jittered across a bucket edge) log
            # nothing, while genuine tail events always do.
            why = "p99"
        h.observe(dur)
        n = h.count
        if n >= self.min_count and not (n & (SlowOpLog._P99_REFRESH - 1)):
            ent[2] = h.quantile_upper(0.99)
        if why is None:
            return
        self.n_slow += 1
        entry = {"op": op, "start_s": start, "dur_s": dur, "why": why,
                 "ok": ok, "sampled": root is not None}
        self._seq += 1
        heap = self._slow.setdefault(op, [])
        item = (dur, self._seq, entry, root)
        if len(heap) < self.keep:
            heapq.heappush(heap, item)
        elif dur > heap[0][0]:
            heapq.heapreplace(heap, item)

    # -- reporting ----------------------------------------------------------

    def to_dict(self, max_entries: Optional[int] = None) -> Dict[str, Any]:
        """JSON-safe dump: per-op-type latency summary + slowest entries,
        with per-category waterfalls for the entries that were sampled."""
        waterfalls: Dict[int, Dict[str, float]] = {}
        if self.tracer is not None:
            from .export import root_waterfalls

            roots = [item[3] for heap in self._slow.values()
                     for item in heap if item[3] is not None]
            if roots:
                waterfalls = root_waterfalls(self.tracer, roots)
        ops: Dict[str, Any] = {}
        for op in sorted(self._hists):
            h = self._hists[op]
            items = sorted(self._slow.get(op, ()),
                           key=lambda it: (-it[0], it[1]))
            if max_entries is not None:
                items = items[:max_entries]
            slow = []
            for _dur, _seq, entry, root in items:
                entry = dict(entry)
                wf = waterfalls.get(id(root)) if root is not None else None
                if wf is not None:
                    entry["waterfall_s"] = {c: round(s, 9)
                                            for c, s in sorted(wf.items())}
                slow.append(entry)
            ops[op] = {
                "count": h.count,
                "mean_s": h.mean,
                "p50_s": h.quantile(0.50),
                "p99_s": h.quantile(0.99),
                "max_s": h.max,
                "slow": slow,
            }
        return {
            "schema": SLOWLOG_SCHEMA,
            "default_threshold_s": self.default_threshold,
            "min_count": self.min_count,
            "keep": self.keep,
            "n_slow": self.n_slow,
            "ops": ops,
        }

    def dump(self, path: str, max_entries: Optional[int] = None) -> int:
        """Write the slow-op log as JSON; returns the entry count."""
        doc = self.to_dict(max_entries=max_entries)
        with open(path, "w") as f:
            f.write(json.dumps(doc, allow_nan=False))
        return sum(len(row["slow"]) for row in doc["ops"].values())
