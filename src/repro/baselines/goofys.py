"""goofys baseline: a high-throughput, relaxed-POSIX S3 file system.

goofys trades POSIX fidelity for streaming performance (Section IV-B):

* reads are pipelined ranged GETs with a read-ahead window of up to
  **400 MB** — 50x ArkFS's default — which is why its sequential READ
  bandwidth beats ArkFS-ra8MB and is only matched by ArkFS-ra400MB in
  Fig. 6(b);
* writes are streaming multipart uploads: parts ship to S3 as the
  application writes, so there is no slow disk staging like s3fs;
* random writes, appends to existing objects and ACLs are unsupported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..objectstore.errors import NoSuchKey
from ..posix import path as pathmod
from ..posix.errors import (
    AlreadyExists,
    BadFileHandle,
    DirectoryNotEmpty,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    UnsupportedOperation,
)
from ..posix.types import Credentials, FileType, OpenFlags, StatResult
from ..posix.vfs import FileHandle, VFSClient
from ..sim.engine import Event, SimGen, Simulator
from ..sim.network import Node
from .s3common import Bucket, FileAttrs, dir_key_of, key_of, list_names

__all__ = ["GoofysClient", "GoofysParams"]

MiB = 1024 * 1024


@dataclass(frozen=True)
class GoofysParams:
    readahead: int = 400 * MiB     # max read-ahead window
    chunk_size: int = 2 * MiB      # ranged-GET granularity
    max_inflight: int = 200        # concurrent ranged GETs per handle
    part_size: int = 5 * MiB       # multipart upload part size
    op_cpu: float = 5e-6


class _UploadState:
    """A streaming multipart upload in progress."""

    __slots__ = ("buffer", "parts", "uploads", "total")

    def __init__(self):
        self.buffer = bytearray()     # bytes not yet shipped as a part
        self.parts: List[bytes] = []  # shipped part payloads (for assembly)
        self.uploads: List = []       # in-flight upload processes
        self.total = 0


class _ReadState:
    """Pipelined ranged-GET read-ahead for one open handle."""

    __slots__ = ("chunks", "inflight", "next_chunk")

    def __init__(self):
        self.chunks: Dict[int, object] = {}   # idx -> bytes | Event
        self.inflight = 0
        self.next_chunk = 0


class GoofysClient(VFSClient):
    """One goofys mount of a bucket."""

    def __init__(self, sim: Simulator, node: Node, bucket: Bucket,
                 params: GoofysParams = GoofysParams()):
        self.sim = sim
        self.node = node
        self.bucket = bucket
        self.store = bucket.store
        self.params = params
        self.name = node.name

    # -- helpers -------------------------------------------------------------------

    def _cpu(self) -> SimGen:
        yield from self.node.work(self.params.op_cpu)

    def _head(self, path: str) -> SimGen:
        parts = pathmod.split_path(path)
        if not parts:
            yield self.sim.timeout(0)
            return "", 0, FileType.DIRECTORY
        key = key_of(path)
        try:
            size = yield from self.store.head(key, src=self.node)
            a = self.bucket.attrs.get(key)
            return key, size, (a.ftype if a else FileType.REGULAR)
        except NoSuchKey:
            pass
        dkey = dir_key_of(path)
        try:
            yield from self.store.head(dkey, src=self.node)
            return dkey, 0, FileType.DIRECTORY
        except NoSuchKey:
            raise NotFound(path) from None

    def _stat_of(self, key: str, size: int, ftype: FileType) -> StatResult:
        a = self.bucket.attrs.get(key) or FileAttrs(ftype, 0o755, 0, 0,
                                                    self.sim.now)
        return StatResult(
            st_ino=hash(key) & 0x7FFFFFFF, st_mode=ftype.mode_bits | a.mode,
            st_nlink=1, st_uid=a.uid, st_gid=a.gid, st_size=size,
            st_atime=a.mtime, st_mtime=a.mtime, st_ctime=a.mtime,
        )

    # -- namespace -----------------------------------------------------------------------

    def lookup(self, creds: Credentials, dir_path: str, name: str) -> SimGen:
        return (yield from self.stat(creds, pathmod.join(dir_path, name)))

    def stat(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        key, size, ftype = yield from self._head(path)
        return self._stat_of(key, size, ftype)

    lstat = stat

    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen:
        yield from self._cpu()
        if not pathmod.split_path(path):
            raise AlreadyExists("/")
        try:
            yield from self._head(path)
            raise AlreadyExists(path)
        except NotFound:
            pass
        yield from self.store.put(dir_key_of(path), b"", src=self.node)

    def rmdir(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        if not pathmod.split_path(path):
            raise InvalidArgument("/")
        key, _sz, ftype = yield from self._head(path)
        if ftype is not FileType.DIRECTORY:
            raise NotADirectory(path)
        marker = dir_key_of(path)
        children = yield from self.store.list(marker, src=self.node)
        if [k for k in children if k != marker]:
            raise DirectoryNotEmpty(path)
        yield from self.store.delete(key, src=self.node)

    def readdir(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        _key, _sz, ftype = yield from self._head(path)
        if ftype is not FileType.DIRECTORY:
            raise NotADirectory(path)
        prefix = dir_key_of(path)
        keys = yield from self.store.list(prefix, src=self.node)
        return list_names(keys, prefix)

    def unlink(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        key, _sz, ftype = yield from self._head(path)
        if ftype is FileType.DIRECTORY:
            raise IsADirectory(path)
        yield from self.store.delete(key, src=self.node)
        self.bucket.attrs.pop(key, None)

    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen:
        yield from self._cpu()
        key, size, ftype = yield from self._head(src)
        if ftype is FileType.DIRECTORY:
            raise UnsupportedOperation(src, "goofys cannot rename directories")
        data = yield from self.store.get(key, src=self.node)
        yield from self.store.put(key_of(dst), data, src=self.node)
        yield from self.store.delete(key, src=self.node)

    # -- data: streaming writes --------------------------------------------------------------

    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen:
        yield from self._cpu()
        key = key_of(path)
        size = 0
        exists = True
        try:
            _k, size, ftype = yield from self._head(path)
            if ftype is FileType.DIRECTORY:
                raise IsADirectory(path)
            if flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
                raise AlreadyExists(path)
        except NotFound:
            exists = False
            if not flags & OpenFlags.O_CREAT:
                raise
        if flags.wants_write and exists and not flags & OpenFlags.O_TRUNC:
            raise UnsupportedOperation(
                path, "goofys cannot modify existing objects in place")
        impl = {"key": key, "size": 0 if flags & OpenFlags.O_TRUNC else size}
        if flags.wants_write:
            impl["upload"] = _UploadState()
        if flags.wants_read:
            impl["reader"] = _ReadState()
        handle = FileHandle(hash(key) & 0x7FFFFFFF, flags, creds, impl=impl)
        return handle

    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        up: _UploadState = handle.impl.get("upload")
        if up is None:
            raise BadFileHandle(detail="not open for writing")
        pos = handle.pos if offset is None else offset
        if pos != up.total:
            raise UnsupportedOperation(
                handle.impl["key"], "goofys supports sequential writes only")
        up.buffer += data
        up.total += len(data)
        handle.impl["size"] = up.total
        # Ship full parts as they accumulate — the streaming upload.
        while len(up.buffer) >= self.params.part_size:
            part = bytes(up.buffer[: self.params.part_size])
            del up.buffer[: self.params.part_size]
            up.parts.append(part)
            idx = len(up.parts)
            proc = self.sim.process(
                self._upload_part(handle.impl["key"], idx, part),
                name=f"goofys-part{idx}")
            up.uploads.append(proc)
        yield self.sim.timeout(0)
        if offset is None:
            handle.pos = pos + len(data)
        return len(data)

    def _upload_part(self, key: str, idx: int, part: bytes) -> SimGen:
        part_key = f"{key}.goofys-part.{idx:06d}"
        yield from self.store.put(part_key, part, src=self.node)

    def _complete_upload(self, key: str, up: _UploadState) -> SimGen:
        if up.buffer:
            part = bytes(up.buffer)
            up.buffer.clear()
            up.parts.append(part)
            up.uploads.append(self.sim.process(
                self._upload_part(key, len(up.parts), part)))
        if up.uploads:
            # Part uploads were launched by earlier write() calls; the wait
            # for them to drain is queueing charged to this flush.
            wait = self.sim.all_of(up.uploads)
            tr = self.sim._tracer
            if tr is not None:
                with tr.span("goofys.upload.wait", "queue"):
                    yield wait
            else:
                yield wait
            up.uploads.clear()
        # CompleteMultipartUpload: S3 assembles parts server-side, so the
        # final object appears without re-shipping the bytes.
        data = b"".join(up.parts)
        self.bucket.functional_put(key, data)
        for i in range(1, len(up.parts) + 1):
            self.bucket.functional_delete(f"{key}.goofys-part.{i:06d}")
        yield from self.store.head(key, src=self.node)  # the Complete call
        self.bucket.attrs[key] = FileAttrs(FileType.REGULAR, 0o644, 0, 0,
                                           self.sim.now)

    def fsync(self, handle: FileHandle) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        up: _UploadState = handle.impl.get("upload")
        if up is not None and (up.parts or up.buffer or up.uploads):
            yield from self._complete_upload(handle.impl["key"], up)
            handle.impl["upload"] = _UploadState()
            handle.impl["completed"] = True
        else:
            yield self.sim.timeout(0)

    def close(self, handle: FileHandle) -> SimGen:
        up: _UploadState = handle.impl.get("upload")
        if up is not None and not handle.impl.get("completed") and (
                up.parts or up.buffer or up.uploads or
                handle.impl["size"] == 0):
            yield from self._complete_upload(handle.impl["key"], up)
        else:
            yield self.sim.timeout(0)
        handle.closed = True

    # -- data: pipelined reads ------------------------------------------------------------------

    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        rd: _ReadState = handle.impl.get("reader")
        if rd is None:
            raise BadFileHandle(detail="not open for reading")
        key = handle.impl["key"]
        file_size = handle.impl["size"]
        pos = handle.pos if offset is None else offset
        eff = max(0, min(size, file_size - pos))
        if eff == 0:
            yield self.sim.timeout(0)
            return b""
        csz = self.params.chunk_size
        first = pos // csz
        last = (pos + eff - 1) // csz
        # Launch read-ahead: keep the window full of in-flight GETs.
        window_chunks = self.params.readahead // csz
        ra_last = min((file_size - 1) // csz, last + window_chunks)
        nxt = max(rd.next_chunk, first)
        while nxt <= ra_last and rd.inflight < self.params.max_inflight:
            if nxt not in rd.chunks:
                ev = self.sim.event()
                rd.chunks[nxt] = ev
                rd.inflight += 1
                self.sim.process(self._fetch_chunk(key, nxt, csz, file_size,
                                                   rd, ev))
            nxt += 1
        rd.next_chunk = nxt
        out = bytearray()
        for idx in range(first, last + 1):
            chunk = rd.chunks.get(idx)
            if chunk is None:
                ev = self.sim.event()
                rd.chunks[idx] = ev
                rd.inflight += 1
                self.sim.process(self._fetch_chunk(key, idx, csz, file_size,
                                                   rd, ev))
                chunk = ev
            if isinstance(chunk, Event):
                # The fetch may have been launched by an earlier read() call
                # (read-ahead), so its spans belong to that op; attribute the
                # wait itself as queueing on this one.
                tr = self.sim._tracer
                if tr is not None:
                    with tr.span("goofys.ra.wait", "queue"):
                        chunk = yield chunk
                else:
                    chunk = yield chunk
            lo = max(pos, idx * csz) - idx * csz
            hi = min(pos + eff, (idx + 1) * csz) - idx * csz
            out += chunk[lo:hi]
        # Trim consumed chunks so memory stays bounded.
        for idx in list(rd.chunks):
            if idx < first:
                del rd.chunks[idx]
        if offset is None:
            handle.pos = pos + len(out)
        return bytes(out)

    def _fetch_chunk(self, key: str, idx: int, csz: int, file_size: int,
                     rd: _ReadState, ev: Event) -> SimGen:
        length = min(csz, file_size - idx * csz)
        try:
            data = yield from self.store.get_range(key, idx * csz, length,
                                                   src=self.node)
        except Exception as exc:  # noqa: BLE001
            rd.inflight -= 1
            ev.fail(exc)
            return
        rd.inflight -= 1
        rd.chunks[idx] = data
        ev.succeed(data)

    # -- attributes & the rest -----------------------------------------------------------------------

    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen:
        yield self.sim.timeout(0)
        if size != 0:
            raise UnsupportedOperation(path, "goofys: truncate only to 0")
        yield from self.store.put(key_of(path), b"", src=self.node)

    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen:
        yield self.sim.timeout(0)  # accepted and ignored, like goofys

    def chown(self, creds: Credentials, path: str, uid: int, gid: int) -> SimGen:
        yield self.sim.timeout(0)

    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen:
        yield self.sim.timeout(0)

    def access(self, creds: Credentials, path: str, want: int) -> SimGen:
        yield from self._head(path)
        return True

    def symlink(self, creds: Credentials, target: str, linkpath: str) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(linkpath, "goofys does not support symlinks")

    def readlink(self, creds: Credentials, path: str) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(path)

    def getfacl(self, creds: Credentials, path: str) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(path, "goofys does not support ACLs")

    def setfacl(self, creds: Credentials, path: str, acl) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(path, "goofys does not support ACLs")

    def sync(self) -> SimGen:
        yield self.sim.timeout(0)

    def drop_caches(self) -> SimGen:
        yield self.sim.timeout(0)
