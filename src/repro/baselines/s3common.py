"""Shared plumbing for the S3-backed file systems (S3FS, goofys).

Both map the POSIX namespace onto *full-path object keys* inside a bucket
(the design the paper criticizes: whole-object rewrites, O(subtree)
renames, no client coordination). This module holds the key mapping,
client-side delimiter listing, the shared attribute sidecar (standing in
for ``x-amz-meta-*`` headers), and functional (cost-free) store access used
when timing has already been charged elsewhere (e.g. multipart-upload
completion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..objectstore.base import ObjectStore
from ..objectstore.cluster import ClusterObjectStore
from ..objectstore.memory import InMemoryObjectStore
from ..posix import path as pathmod
from ..posix.types import FileType

__all__ = ["Bucket", "FileAttrs", "key_of", "dir_key_of", "list_names"]


def key_of(path: str) -> str:
    """``/a/b/c`` → ``a/b/c`` (the S3 object key)."""
    return "/".join(pathmod.split_path(path))


def dir_key_of(path: str) -> str:
    """Directory marker object key (s3fs convention: trailing slash)."""
    k = key_of(path)
    return k + "/" if k else ""


@dataclass
class FileAttrs:
    """The metadata s3fs keeps in x-amz-meta headers."""

    ftype: FileType
    mode: int
    uid: int
    gid: int
    mtime: float
    symlink_target: Optional[str] = None


class Bucket:
    """One mounted bucket: the object store plus the attrs sidecar.

    The sidecar is *shared* between clients (headers live in S3), matching
    real deployments where two mounts of one bucket see each other's
    objects but perform no coordination whatsoever.
    """

    def __init__(self, store: ObjectStore):
        self.store = store
        self.attrs: Dict[str, FileAttrs] = {}

    # -- functional (pre-charged) access ------------------------------------

    def functional_put(self, key: str, data: bytes) -> None:
        """Install object content whose transfer cost was already charged
        (multipart completion assembles parts server-side for free)."""
        if isinstance(self.store, ClusterObjectStore):
            self.store.backing.sync_put(key, data)
        elif isinstance(self.store, InMemoryObjectStore):
            self.store.sync_put(key, data)
        else:  # pragma: no cover - future store types
            raise TypeError("unsupported store for functional access")

    def functional_delete(self, key: str) -> None:
        try:
            if isinstance(self.store, ClusterObjectStore):
                self.store.backing.sync_delete(key)
            elif isinstance(self.store, InMemoryObjectStore):
                self.store.sync_delete(key)
        except Exception:
            pass

    def sync_list(self, prefix: str) -> List[str]:
        if isinstance(self.store, ClusterObjectStore):
            return self.store.backing.sync_list(prefix)
        return self.store.sync_list(prefix)


def list_names(keys: List[str], prefix: str) -> List[str]:
    """Client-side delimiter collapse: immediate children under ``prefix``.

    ``prefix`` must be "" (bucket root) or end with "/". Directory markers
    lose their trailing slash; duplicates collapse.
    """
    names = set()
    plen = len(prefix)
    for key in keys:
        rest = key[plen:]
        if not rest:
            continue  # the marker of the listed directory itself
        name = rest.split("/", 1)[0]
        if name:
            names.add(name)
    return sorted(names)
