"""A centralized hierarchical namespace (the state an MDS cluster manages).

This is the functional core shared by the CephFS and MarFS baselines: a
plain in-memory tree of inodes mutated synchronously. All *timing* (RPC
round trips, MDS service, lock contention) is charged by the MDS model in
:mod:`repro.baselines.mds`; this module is pure state + POSIX checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..posix.acl import Acl, check_perm
from ..posix.errors import (
    AlreadyExists,
    DirectoryNotEmpty,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    NotPermitted,
    PermissionDenied,
    TooManySymlinks,
)
from ..posix.types import Credentials, FileType, OpenFlags, R_OK, W_OK, X_OK
from ..core.types import Inode, InoAllocator, ROOT_INO

__all__ = ["Namespace", "NSNode"]


class NSNode:
    __slots__ = ("inode", "children")

    def __init__(self, inode: Inode):
        self.inode = inode
        self.children: Optional[Dict[str, int]] = (
            {} if inode.ftype is FileType.DIRECTORY else None
        )


class Namespace:
    """The global file-system tree held by the metadata service."""

    def __init__(self, alloc: InoAllocator, now: float = 0.0):
        self.alloc = alloc
        root = Inode(ino=ROOT_INO, ftype=FileType.DIRECTORY, mode=0o777,
                     uid=0, gid=0, atime=now, mtime=now, ctime=now)
        self.nodes: Dict[int, NSNode] = {ROOT_INO: NSNode(root)}

    # -- helpers ---------------------------------------------------------------

    def node(self, ino: int) -> NSNode:
        try:
            return self.nodes[ino]
        except KeyError:
            raise NotFound(f"ino {ino:x}") from None

    def _check(self, inode: Inode, creds: Optional[Credentials],
               want: int) -> None:
        if creds is not None and not check_perm(
            inode.acl, inode.mode, inode.uid, inode.gid, creds, want
        ):
            raise PermissionDenied(f"ino {inode.ino:x}")

    def _dir(self, ino: int) -> NSNode:
        n = self.node(ino)
        if n.children is None:
            raise NotADirectory(f"ino {ino:x}")
        return n

    # -- resolution -------------------------------------------------------------

    def resolve(self, creds: Optional[Credentials], parts: List[str],
                follow_final: bool = True, _depth: int = 0) -> int:
        """Walk components from the root; returns the final ino."""
        if _depth > 40:
            raise TooManySymlinks("/".join(parts))
        cur = ROOT_INO
        for i, name in enumerate(parts):
            d = self._dir(cur)
            self._check(d.inode, creds, X_OK)
            child_ino = d.children.get(name)
            if child_ino is None:
                raise NotFound(name)
            child = self.node(child_ino)
            is_final = i == len(parts) - 1
            if child.inode.is_symlink and (not is_final or follow_final):
                target = child.inode.symlink_target or ""
                tparts = [c for c in target.split("/") if c and c != "."]
                if target.startswith("/"):
                    rebased = tparts + parts[i + 1:]
                    return self.resolve(creds, rebased, follow_final,
                                        _depth + 1)
                # Relative: resolve against the current directory.
                rebased = tparts + parts[i + 1:]
                sub = self.resolve_from(creds, cur, rebased, follow_final,
                                        _depth + 1)
                return sub
            cur = child_ino
        return cur

    def resolve_from(self, creds, base: int, parts: List[str],
                     follow_final: bool, _depth: int) -> int:
        if _depth > 40:
            raise TooManySymlinks("/".join(parts))
        cur = base
        for i, name in enumerate(parts):
            d = self._dir(cur)
            self._check(d.inode, creds, X_OK)
            child_ino = d.children.get(name)
            if child_ino is None:
                raise NotFound(name)
            child = self.node(child_ino)
            is_final = i == len(parts) - 1
            if child.inode.is_symlink and (not is_final or follow_final):
                target = child.inode.symlink_target or ""
                tparts = [c for c in target.split("/") if c and c != "."]
                rebased = tparts + parts[i + 1:]
                if target.startswith("/"):
                    return self.resolve(creds, rebased, follow_final,
                                        _depth + 1)
                return self.resolve_from(creds, cur, rebased, follow_final,
                                         _depth + 1)
            cur = child_ino
        return cur

    def resolve_parent(self, creds, parts: List[str]) -> Tuple[int, str]:
        if not parts:
            raise InvalidArgument("/", "needs a parent")
        return self.resolve(creds, parts[:-1]), parts[-1]

    # -- operations (synchronous state changes) -------------------------------------

    def lookup(self, creds, dir_ino: int, name: str) -> Inode:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, X_OK)
        child = d.children.get(name)
        if child is None:
            raise NotFound(name)
        return self.node(child).inode

    def mkdir(self, creds, dir_ino: int, name: str, mode: int,
              now: float) -> Inode:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, W_OK | X_OK)
        if name in d.children:
            raise AlreadyExists(name)
        ino = self.alloc.new()
        inode = Inode(ino=ino, ftype=FileType.DIRECTORY,
                      mode=(creds.apply_umask(mode) if creds else mode & 0o777),
                      uid=creds.uid if creds else 0,
                      gid=creds.gid if creds else 0,
                      atime=now, mtime=now, ctime=now)
        self.nodes[ino] = NSNode(inode)
        d.children[name] = ino
        d.inode.nlink += 1
        d.inode.mtime = d.inode.ctime = now
        return inode

    def create(self, creds, dir_ino: int, name: str, flags: OpenFlags,
               mode: int, now: float) -> Tuple[Inode, bool]:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, X_OK)
        existing = d.children.get(name)
        if existing is not None:
            if flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
                raise AlreadyExists(name)
            node = self.node(existing)
            if node.inode.is_dir:
                raise IsADirectory(name)
            if flags.wants_read:
                self._check(node.inode, creds, R_OK)
            if flags.wants_write:
                self._check(node.inode, creds, W_OK)
            return node.inode, False
        if not flags & OpenFlags.O_CREAT:
            raise NotFound(name)
        self._check(d.inode, creds, W_OK | X_OK)
        ino = self.alloc.new()
        inode = Inode(ino=ino, ftype=FileType.REGULAR,
                      mode=(creds.apply_umask(mode) if creds else mode & 0o777),
                      uid=creds.uid if creds else 0,
                      gid=creds.gid if creds else 0,
                      atime=now, mtime=now, ctime=now)
        self.nodes[ino] = NSNode(inode)
        d.children[name] = ino
        d.inode.mtime = d.inode.ctime = now
        return inode, True

    def unlink(self, creds, dir_ino: int, name: str, now: float) -> Inode:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, W_OK | X_OK)
        ino = d.children.get(name)
        if ino is None:
            raise NotFound(name)
        node = self.node(ino)
        if node.inode.is_dir:
            raise IsADirectory(name)
        del d.children[name]
        del self.nodes[ino]
        d.inode.mtime = d.inode.ctime = now
        return node.inode

    def rmdir(self, creds, dir_ino: int, name: str, now: float) -> Inode:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, W_OK | X_OK)
        ino = d.children.get(name)
        if ino is None:
            raise NotFound(name)
        node = self.node(ino)
        if not node.inode.is_dir:
            raise NotADirectory(name)
        if node.children:
            raise DirectoryNotEmpty(name)
        del d.children[name]
        del self.nodes[ino]
        d.inode.nlink -= 1
        d.inode.mtime = d.inode.ctime = now
        return node.inode

    def readdir(self, creds, dir_ino: int) -> List[str]:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, R_OK)
        return sorted(d.children)

    def rename(self, creds, sp: int, sname: str, dp: int, dname: str,
               now: float) -> Optional[Inode]:
        """Returns the inode of an overwritten file (for data cleanup)."""
        src_dir = self._dir(sp)
        dst_dir = self._dir(dp)
        self._check(src_dir.inode, creds, W_OK | X_OK)
        self._check(dst_dir.inode, creds, W_OK | X_OK)
        ino = src_dir.children.get(sname)
        if ino is None:
            raise NotFound(sname)
        moving = self.node(ino)
        removed: Optional[Inode] = None
        existing = dst_dir.children.get(dname)
        if existing is not None and existing != ino:
            ex = self.node(existing)
            if ex.inode.is_dir:
                if not moving.inode.is_dir:
                    raise IsADirectory(dname)
                if ex.children:
                    raise DirectoryNotEmpty(dname)
                dst_dir.inode.nlink -= 1
            elif moving.inode.is_dir:
                raise NotADirectory(dname)
            removed = ex.inode
            del self.nodes[existing]
        if existing == ino:
            return None
        del src_dir.children[sname]
        dst_dir.children[dname] = ino
        if moving.inode.is_dir and sp != dp:
            src_dir.inode.nlink -= 1
            dst_dir.inode.nlink += 1
        src_dir.inode.mtime = src_dir.inode.ctime = now
        dst_dir.inode.mtime = dst_dir.inode.ctime = now
        moving.inode.ctime = now
        return removed

    def symlink(self, creds, dir_ino: int, name: str, target: str,
                now: float) -> Inode:
        d = self._dir(dir_ino)
        self._check(d.inode, creds, W_OK | X_OK)
        if name in d.children:
            raise AlreadyExists(name)
        ino = self.alloc.new()
        inode = Inode(ino=ino, ftype=FileType.SYMLINK, mode=0o777,
                      uid=creds.uid if creds else 0,
                      gid=creds.gid if creds else 0, size=len(target),
                      atime=now, mtime=now, ctime=now, symlink_target=target)
        self.nodes[ino] = NSNode(inode)
        d.children[name] = ino
        d.inode.mtime = d.inode.ctime = now
        return inode

    def setattr(self, creds, ino: int, changes: dict, now: float) -> Inode:
        inode = self.node(ino).inode
        if "mode" in changes:
            self._owner(creds, inode)
            inode.mode = changes["mode"] & 0o7777
            if inode.acl is not None:
                inode.acl.apply_chmod(changes["mode"])
            inode.ctime = now
        if "uid" in changes or "gid" in changes:
            new_uid = changes.get("uid", inode.uid)
            new_gid = changes.get("gid", inode.gid)
            if creds is not None and not creds.is_root:
                if new_uid != inode.uid or creds.uid != inode.uid or \
                        not creds.in_group(new_gid):
                    raise NotPermitted(f"ino {ino:x}")
            inode.uid, inode.gid = new_uid, new_gid
            inode.ctime = now
        if "acl" in changes:
            self._owner(creds, inode)
            acl = changes["acl"]
            inode.acl = acl if isinstance(acl, Acl) else Acl.from_dict(acl)
            inode.ctime = now
        if "times" in changes:
            inode.atime, inode.mtime = changes["times"]
            inode.ctime = now
        if "size" in changes:
            self._check(inode, creds, W_OK)
            inode.size = changes["size"]
            inode.mtime = inode.ctime = now
        return inode

    def _owner(self, creds, inode: Inode) -> None:
        if creds is not None and not creds.is_root and creds.uid != inode.uid:
            raise NotPermitted(f"ino {inode.ino:x}")

    def update_size(self, ino: int, size: int, mtime: float) -> None:
        inode = self.node(ino).inode
        if size > inode.size:
            inode.size = size
        inode.mtime = max(inode.mtime, mtime)

    def count_nodes(self) -> int:
        return len(self.nodes)
