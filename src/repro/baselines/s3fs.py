"""S3FS baseline: a FUSE wrapper mapping each object to a file.

Models the behaviours the paper calls out (Section II-C and IV-B):

* each object's key is the full pathname, so renaming a directory rewrites
  every object under it;
* random writes or appends rewrite the entire object (GET whole + PUT
  whole);
* data is staged through a *disk cache* — a slow EBS volume — on both the
  write path (writes land on disk, upload happens at fsync/flush) and the
  read path (objects are downloaded to disk before serving reads). This
  disk staging is what costs S3FS 5.95x WRITE / 3.59x READ vs ArkFS in
  Fig. 6(b);
* permission checks are "not done rigorously" and there is no coordination
  between clients mounting the same bucket — faithfully reproduced by
  checking nothing and coordinating nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..objectstore.cluster import LocalDisk
from ..objectstore.errors import NoSuchKey
from ..objectstore.profiles import DiskProfile, EBS_SLOW_CACHE
from ..posix import path as pathmod
from ..posix.errors import (
    AlreadyExists,
    BadFileHandle,
    DirectoryNotEmpty,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
    UnsupportedOperation,
)
from ..posix.types import Credentials, FileType, OpenFlags, StatResult
from ..posix.vfs import FileHandle, VFSClient
from ..sim.engine import SimGen, Simulator
from ..sim.network import Node
from .s3common import Bucket, FileAttrs, dir_key_of, key_of, list_names

__all__ = ["S3FSClient"]


@dataclass
class _Staged:
    """A file staged in the disk cache."""

    data: bytearray
    dirty: bool = False


class S3FSClient(VFSClient):
    """One s3fs mount of a bucket."""

    def __init__(self, sim: Simulator, node: Node, bucket: Bucket,
                 disk_profile: DiskProfile = EBS_SLOW_CACHE,
                 op_cpu: float = 8e-6):
        self.sim = sim
        self.node = node
        self.bucket = bucket
        self.store = bucket.store
        self.disk = LocalDisk(sim, disk_profile, name=f"{node.name}.s3fs-cache")
        self.op_cpu = op_cpu
        self.name = node.name
        self._staged: Dict[str, _Staged] = {}

    # -- helpers ------------------------------------------------------------------

    def _cpu(self) -> SimGen:
        yield from self.node.work(self.op_cpu)

    def _attrs(self, key: str, default_type=FileType.REGULAR,
               size: int = 0) -> FileAttrs:
        a = self.bucket.attrs.get(key)
        if a is None:
            a = FileAttrs(ftype=default_type, mode=0o777, uid=0, gid=0,
                          mtime=self.sim.now)
        return a

    def _stat_of(self, key: str, size: int, ftype: FileType) -> StatResult:
        a = self._attrs(key, ftype)
        return StatResult(
            st_ino=hash(key) & 0x7FFFFFFF, st_mode=a.ftype.mode_bits | a.mode,
            st_nlink=1, st_uid=a.uid, st_gid=a.gid, st_size=size,
            st_atime=a.mtime, st_mtime=a.mtime, st_ctime=a.mtime,
        )

    def _head(self, path: str) -> SimGen:
        """Returns (key, size, ftype) or raises NotFound. Directories are
        marker objects; the bucket root always exists."""
        parts = pathmod.split_path(path)
        if not parts:
            yield self.sim.timeout(0)
            return "", 0, FileType.DIRECTORY
        key = key_of(path)
        try:
            size = yield from self.store.head(key, src=self.node)
            a = self.bucket.attrs.get(key)
            ftype = a.ftype if a else FileType.REGULAR
            return key, size, ftype
        except NoSuchKey:
            pass
        dkey = dir_key_of(path)
        try:
            yield from self.store.head(dkey, src=self.node)
            return dkey, 0, FileType.DIRECTORY
        except NoSuchKey:
            raise NotFound(path) from None

    #: s3fs downloads big objects with parallel ranged GETs
    #: (multipart_size=10MB, parallel_count=5 by default).
    DOWNLOAD_CHUNK = 10 * 1024 * 1024
    DOWNLOAD_PARALLEL = 5

    def _stage_download(self, key: str, size: int) -> SimGen:
        """Download the whole object (parallel ranged GETs) and write it
        through the disk cache."""
        staged = self._staged.get(key)
        if staged is not None:
            return staged
        if size <= self.DOWNLOAD_CHUNK:
            data = yield from self.store.get(key, src=self.node)
        else:
            pieces: dict = {}

            def fetch(idx: int, off: int, n: int) -> SimGen:
                pieces[idx] = yield from self.store.get_range(
                    key, off, n, src=self.node)

            offsets = list(range(0, size, self.DOWNLOAD_CHUNK))
            for batch_start in range(0, len(offsets), self.DOWNLOAD_PARALLEL):
                batch = offsets[batch_start:batch_start +
                                self.DOWNLOAD_PARALLEL]
                procs = [
                    self.sim.process(fetch(i, off,
                                           min(self.DOWNLOAD_CHUNK,
                                               size - off)))
                    for i, off in enumerate(batch, start=batch_start)
                ]
                yield self.sim.all_of(procs)
            data = b"".join(pieces[i] for i in range(len(offsets)))
        yield from self.disk.write(len(data))
        staged = _Staged(bytearray(data))
        self._staged[key] = staged
        return staged

    # -- namespace ---------------------------------------------------------------------

    def lookup(self, creds: Credentials, dir_path: str, name: str) -> SimGen:
        return (yield from self.stat(creds, pathmod.join(dir_path, name)))

    def stat(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        key, size, ftype = yield from self._head(path)
        return self._stat_of(key, size, ftype)

    lstat = stat  # s3fs resolves symlinks only on open/read

    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen:
        yield from self._cpu()
        parts = pathmod.split_path(path)
        if not parts:
            raise AlreadyExists("/")
        try:
            yield from self._head(path)
            raise AlreadyExists(path)
        except NotFound:
            pass
        dkey = dir_key_of(path)
        yield from self.store.put(dkey, b"", src=self.node)
        self.bucket.attrs[dkey] = FileAttrs(FileType.DIRECTORY, mode & 0o777,
                                            creds.uid if creds else 0,
                                            creds.gid if creds else 0,
                                            self.sim.now)

    def rmdir(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        parts = pathmod.split_path(path)
        if not parts:
            raise InvalidArgument("/")
        key, _size, ftype = yield from self._head(path)
        if ftype is not FileType.DIRECTORY:
            raise NotADirectory(path)
        marker = dir_key_of(path)
        children = yield from self.store.list(marker, src=self.node)
        if [k for k in children if k != marker]:
            raise DirectoryNotEmpty(path)
        yield from self.store.delete(key, src=self.node)
        self.bucket.attrs.pop(key, None)

    def readdir(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        _key, _size, ftype = yield from self._head(path)
        if ftype is not FileType.DIRECTORY:
            raise NotADirectory(path)
        prefix = dir_key_of(path)
        keys = yield from self.store.list(prefix, src=self.node)
        return list_names(keys, prefix)

    def unlink(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        key, _size, ftype = yield from self._head(path)
        if ftype is FileType.DIRECTORY:
            raise IsADirectory(path)
        yield from self.store.delete(key, src=self.node)
        self.bucket.attrs.pop(key, None)
        self._staged.pop(key, None)

    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen:
        """Rename = copy + delete per object. Directory renames rewrite the
        whole subtree (the paper's key criticism of path-keyed designs)."""
        yield from self._cpu()
        if pathmod.is_ancestor(pathmod.normalize(src), pathmod.normalize(dst)):
            raise InvalidArgument(dst, "destination inside source")
        key, size, ftype = yield from self._head(src)
        if ftype is not FileType.DIRECTORY:
            yield from self._copy_object(key, key_of(dst))
            yield from self.store.delete(key, src=self.node)
            return
        src_prefix = dir_key_of(src)
        dst_prefix = dir_key_of(dst)
        # The LIST includes the marker itself plus everything below it;
        # every single object is copied and deleted — the O(subtree) rename.
        subtree = yield from self.store.list(src_prefix, src=self.node)
        for k in subtree:
            new_key = dst_prefix + k[len(src_prefix):]
            yield from self._copy_object(k, new_key)
            yield from self.store.delete(k, src=self.node)

    def _copy_object(self, src_key: str, dst_key: str) -> SimGen:
        data = yield from self.store.get(src_key, src=self.node)
        yield from self.store.put(dst_key, data, src=self.node)
        if src_key in self.bucket.attrs:
            self.bucket.attrs[dst_key] = self.bucket.attrs.pop(src_key)

    # -- data ------------------------------------------------------------------------------

    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen:
        yield from self._cpu()
        key = key_of(path)
        size = None
        try:
            key2, size, ftype = yield from self._head(path)
            if ftype is FileType.DIRECTORY:
                raise IsADirectory(path)
            a = self.bucket.attrs.get(key)
            if a is not None and a.symlink_target:
                return (yield from self.open(
                    creds, self._resolve_link(path, a.symlink_target),
                    flags, mode))
            if flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
                raise AlreadyExists(path)
        except NotFound:
            if not flags & OpenFlags.O_CREAT:
                raise
            yield from self.store.put(key, b"", src=self.node)
            self.bucket.attrs[key] = FileAttrs(
                FileType.REGULAR, (creds.apply_umask(mode) if creds
                                   else mode & 0o777),
                creds.uid if creds else 0, creds.gid if creds else 0,
                self.sim.now)
            size = 0
        if flags & OpenFlags.O_TRUNC and size:
            self._staged[key] = _Staged(bytearray(), dirty=True)
            size = 0
        handle = FileHandle(hash(key) & 0x7FFFFFFF, flags, creds,
                            impl={"key": key, "size": size})
        if flags & OpenFlags.O_APPEND:
            handle.pos = size
        return handle

    def _resolve_link(self, path: str, target: str) -> str:
        if target.startswith("/"):
            return target
        base, _name = pathmod.parent_and_name(pathmod.normalize(path))
        return base.rstrip("/") + "/" + target

    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        key = handle.impl["key"]
        pos = handle.pos if offset is None else offset
        staged = self._staged.get(key)
        if staged is None:
            # Download through the slow disk cache before serving anything.
            obj_size = handle.impl["size"]
            if obj_size:
                staged = yield from self._stage_download(key, obj_size)
            else:
                staged = _Staged(bytearray())
                self._staged[key] = staged
        yield from self.disk.read(min(size, max(0, len(staged.data) - pos)))
        data = bytes(staged.data[pos : pos + size])
        if offset is None:
            handle.pos = pos + len(data)
        return data

    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        key = handle.impl["key"]
        pos = handle.impl["size"] if handle.flags & OpenFlags.O_APPEND else (
            handle.pos if offset is None else offset)
        staged = self._staged.get(key)
        if staged is None:
            obj_size = handle.impl["size"]
            if obj_size and pos < obj_size:
                # Partial rewrite: must download the whole object first.
                staged = yield from self._stage_download(key, obj_size)
            elif obj_size and pos >= obj_size:
                # Append also rewrites the whole object at flush time.
                staged = yield from self._stage_download(key, obj_size)
            else:
                staged = _Staged(bytearray())
                self._staged[key] = staged
        if len(staged.data) < pos:
            staged.data += b"\x00" * (pos - len(staged.data))
        staged.data[pos : pos + len(data)] = data
        staged.dirty = True
        yield from self.disk.write(len(data))
        handle.impl["size"] = max(handle.impl["size"] or 0,
                                  pos + len(data))
        if offset is None:
            handle.pos = pos + len(data)
        return len(data)

    def fsync(self, handle: FileHandle) -> SimGen:
        if handle.closed:
            raise BadFileHandle()
        yield from self._flush_key(handle.impl["key"])

    def _flush_key(self, key: str) -> SimGen:
        staged = self._staged.get(key)
        if staged is None or not staged.dirty:
            return
        # Read the staged file back off the slow disk, then PUT whole.
        yield from self.disk.read(len(staged.data))
        yield from self.store.put(key, bytes(staged.data), src=self.node)
        staged.dirty = False
        a = self.bucket.attrs.get(key)
        if a is not None:
            a.mtime = self.sim.now

    def close(self, handle: FileHandle) -> SimGen:
        yield from self._flush_key(handle.impl["key"])
        handle.closed = True

    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen:
        yield from self._cpu()
        key, old, ftype = yield from self._head(path)
        if ftype is FileType.DIRECTORY:
            raise IsADirectory(path)
        data = yield from self.store.get(key, src=self.node)
        if size <= len(data):
            out = data[:size]
        else:
            out = data + b"\x00" * (size - len(data))
        yield from self.store.put(key, out, src=self.node)
        staged = self._staged.get(key)
        if staged is not None:
            staged.data = bytearray(out)
            staged.dirty = False

    # -- attributes (whole-object metadata rewrite) -------------------------------------------

    def _meta_rewrite(self, path: str) -> SimGen:
        """chmod/chown on s3fs copies the object to update its headers."""
        key, size, ftype = yield from self._head(path)
        if ftype is not FileType.DIRECTORY and size:
            data = yield from self.store.get(key, src=self.node)
            yield from self.store.put(key, data, src=self.node)
        return key

    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen:
        yield from self._cpu()
        key = yield from self._meta_rewrite(path)
        a = self._attrs(key)
        a.mode = mode & 0o777
        self.bucket.attrs[key] = a

    def chown(self, creds: Credentials, path: str, uid: int, gid: int) -> SimGen:
        yield from self._cpu()
        key = yield from self._meta_rewrite(path)
        a = self._attrs(key)
        a.uid, a.gid = uid, gid
        self.bucket.attrs[key] = a

    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen:
        yield from self._cpu()
        key = yield from self._meta_rewrite(path)
        a = self._attrs(key)
        a.mtime = mtime
        self.bucket.attrs[key] = a

    def access(self, creds: Credentials, path: str, want: int) -> SimGen:
        # "Permission check is not done rigorously" — existence only.
        yield from self._cpu()
        yield from self._head(path)
        return True

    # -- links / ACLs ----------------------------------------------------------------------------

    def symlink(self, creds: Credentials, target: str, linkpath: str) -> SimGen:
        yield from self._cpu()
        key = key_of(linkpath)
        yield from self.store.put(key, target.encode(), src=self.node)
        self.bucket.attrs[key] = FileAttrs(
            FileType.SYMLINK, 0o777, creds.uid if creds else 0,
            creds.gid if creds else 0, self.sim.now, symlink_target=target)

    def readlink(self, creds: Credentials, path: str) -> SimGen:
        yield from self._cpu()
        key = key_of(path)
        a = self.bucket.attrs.get(key)
        if a is None or not a.symlink_target:
            raise InvalidArgument(path, "not a symlink")
        yield from self.store.head(key, src=self.node)
        return a.symlink_target

    def getfacl(self, creds: Credentials, path: str) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(path, "s3fs does not support POSIX ACLs")

    def setfacl(self, creds: Credentials, path: str, acl) -> SimGen:
        yield self.sim.timeout(0)
        raise UnsupportedOperation(path, "s3fs does not support POSIX ACLs")

    # -- durability helpers ---------------------------------------------------------------------------

    def sync(self) -> SimGen:
        for key in list(self._staged):
            yield from self._flush_key(key)

    def drop_caches(self) -> SimGen:
        yield from self.sync()
        self._staged.clear()
