"""MarFS baseline: near-POSIX interface to cloud objects (LANL).

The paper evaluates MarFS v1.12 through its *interactive* FUSE mount (the
pftool parallel path did not work in their environment), backed by two IBM
SpectrumScale metadata nodes and ZFS data movers. We model it as a
centralized-MDS file system with MarFS's heavier metadata service
(:data:`~repro.baselines.mds.MARFS_MDS`), FUSE-only mounting with a global
interactive-mount lock, and the READ-phase failure the paper reports for
mdtest-hard ("MarFS returns errors when we perform this phase in our
environment") reproduced behind ``fail_reads``.
"""

from __future__ import annotations

from typing import Optional

from ..objectstore.base import ObjectStore
from ..objectstore.profiles import MiB, StoreProfile
from ..posix.fuse import MountParams
from ..sim.engine import Simulator
from ..sim.network import NetParams
from .cephfs import CephClientParams, CephFSCluster, build_cephfs
from .mds import MARFS_MDS, MDSParams

__all__ = ["build_marfs", "MARFS_MOUNT"]

#: The interactive mount: FUSE with a coarse global lock (heavier than
#: ceph-fuse — MarFS's interactive path is explicitly not the fast path).
MARFS_MOUNT = MountParams(crossing_latency=12e-6, dispatch_cpu=4e-6,
                          entry_ttl=1.0, lookup_locked=True,
                          global_lock_service=110e-6,
                          data_lock_service=25e-6)

#: MarFS packs small files but still moves data in multi-MB objects.
MARFS_CLIENT = CephClientParams(object_size=4 * MiB,
                                max_readahead=128 * 1024,
                                client_cpu_per_op=6e-6,
                                fail_reads=True)


def build_marfs(
    sim: Simulator,
    n_clients: int = 1,
    mds_params: MDSParams = MARFS_MDS,
    client_params: CephClientParams = MARFS_CLIENT,
    store: Optional[ObjectStore] = None,
    store_profile: Optional[StoreProfile] = None,
    net_params: Optional[NetParams] = None,
    client_cores: int = 32,
    functional: bool = False,
    seed: int = 0,
) -> CephFSCluster:
    """Assemble a MarFS-like deployment (always FUSE-mounted)."""
    cluster = build_cephfs(
        sim, n_clients=n_clients, mds_params=mds_params,
        client_params=client_params, mount="fuse", store=store,
        store_profile=store_profile, net_params=net_params,
        client_cores=client_cores, functional=functional, seed=seed,
    )
    # Swap the ceph-fuse mount parameters for MarFS's interactive mount.
    for mount in cluster.mounts:
        mount.params = MARFS_MOUNT
        if mount._global_lock is None:
            from ..sim.resources import Mutex

            mount._global_lock = Mutex(sim, name="marfs.interactive_lock")
    return cluster
