"""CephFS baseline: a centralized-MDS distributed file system over RADOS.

Every metadata operation is a round trip to the MDS cluster
(:class:`~repro.baselines.mds.MDSCluster`); file data is striped into 4 MB
RADOS objects and cached client-side in a page cache (write-back +
read-ahead — 8 MB max for the kernel mount, 128 KB for ceph-fuse, which is
exactly the asymmetry behind Fig. 6(a)'s READ results). Capabilities that
let clients cache file data are modelled with the same lease machinery as
ArkFS's read/write leases, revoked by the MDS on conflicting opens.

Mount types:
* CephFS-K — :class:`~repro.posix.fuse.KernelMount` (cheap crossings).
* CephFS-F — :class:`~repro.posix.fuse.FuseMount` with ceph-fuse's global
  client lock (the ``client_lock`` serialization that keeps it slow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.cache import DataObjectCache, ReadAheadState
from ..core.filelease import DIRECT, READ, WRITE, FileLeaseGrant, FileLeaseService
from ..core.prt import PRT
from ..core.types import InoAllocator
from ..objectstore.base import ObjectStore
from ..objectstore.cluster import ClusterObjectStore
from ..objectstore.memory import InMemoryObjectStore
from ..objectstore.profiles import MiB, RADOS_PROFILE, StoreProfile
from ..posix import path as pathmod
from ..posix.acl import Acl, check_perm
from ..posix.errors import (
    AlreadyExists,
    BadFileHandle,
    InvalidArgument,
    IsADirectory,
    NotFound,
    UnsupportedOperation,
)
from ..posix.fuse import (
    FUSE_DEFAULTS,
    KERNEL_DEFAULTS,
    FuseMount,
    KernelMount,
    MountParams,
)
from ..posix.types import Credentials, F_OK, OpenFlags
from ..posix.vfs import FileHandle, VFSClient
from ..sim.engine import SimGen, Simulator
from ..sim.network import NetParams, Network, Node
from .mds import CEPH_MDS, MDSCluster, MDSParams
from .namespace import Namespace

__all__ = ["CephLikeClient", "CephFSCluster", "build_cephfs",
           "CephClientParams"]


@dataclass(frozen=True)
class CephClientParams:
    """Client-side knobs for a Ceph-like DFS."""

    object_size: int = 4 * MiB
    cache_capacity: int = 256 * MiB
    max_readahead: int = 8 * MiB       # kernel-mount default
    caps_lease: float = 5.0
    client_cpu_per_op: float = 4e-6
    fail_reads: bool = False           # MarFS interactive-mount READ errors


@dataclass
class _CephOpenState:
    size: int
    mtime: float
    lease: Optional[FileLeaseGrant] = None
    ra: ReadAheadState = field(default_factory=ReadAheadState)
    wrote: bool = False


class CephLikeClient(VFSClient):
    """One client of a centralized-MDS file system (CephFS or MarFS)."""

    def __init__(self, sim: Simulator, node: Node, mds: MDSCluster,
                 prt: PRT, caps: FileLeaseService,
                 params: CephClientParams):
        self.sim = sim
        self.node = node
        self.mds = mds
        self.prt = prt
        self.caps = caps
        self.params = params
        self.name = node.name
        self.ns = mds.namespace
        self.cache = DataObjectCache(
            sim, prt, node, entry_size=params.object_size,
            capacity_bytes=params.cache_capacity,
            max_readahead=params.max_readahead,
        )

    # -- plumbing -----------------------------------------------------------

    def _cpu(self) -> SimGen:
        yield from self.node.work(self.params.client_cpu_per_op)

    def _mds(self, dir_key: int, mutate, weight: float = 1.0) -> SimGen:
        yield from self._cpu()
        return (yield from self.mds.call(self.node, dir_key, mutate, weight))

    def _parts(self, path: str):
        return pathmod.split_path(path)

    @staticmethod
    def _dirkey(path: str) -> int:
        """Deterministic subtree-partitioning key: the parent directory."""
        import zlib
        parts = pathmod.split_path(path)
        parent = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
        return zlib.crc32(parent.encode())

    # -- VFS: namespace ---------------------------------------------------------

    def lookup(self, creds: Credentials, dir_path: str, name: str) -> SimGen:
        parts = self._parts(dir_path)

        def mutate():
            dir_ino = self.ns.resolve(creds, parts)
            return self.ns.lookup(creds, dir_ino, name).stat()

        return (yield from self._mds(self._dirkey(dir_path + "/x"), mutate))

    def mkdir(self, creds: Credentials, path: str, mode: int = 0o777) -> SimGen:
        parts = self._parts(path)
        if not parts:
            raise AlreadyExists("/")
        now = self.sim.now

        def mutate():
            parent, name = self.ns.resolve_parent(creds, parts)
            return self.ns.mkdir(creds, parent, name, mode, now)

        yield from self._mds(self._dirkey(path), mutate)

    def rmdir(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)
        if not parts:
            raise InvalidArgument("/", "cannot rmdir the root")
        now = self.sim.now

        def mutate():
            parent, name = self.ns.resolve_parent(creds, parts)
            return self.ns.rmdir(creds, parent, name, now)

        yield from self._mds(self._dirkey(path), mutate)

    def readdir(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)

        def mutate():
            return self.ns.readdir(creds, self.ns.resolve(creds, parts))

        return (yield from self._mds(self._dirkey(path), mutate))

    def unlink(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)
        now = self.sim.now

        def mutate():
            parent, name = self.ns.resolve_parent(creds, parts)
            return self.ns.unlink(creds, parent, name, now)

        inode = yield from self._mds(self._dirkey(path), mutate)
        yield from self.cache.invalidate(inode.ino, flush_dirty=False)
        self.caps.forget_file(inode.ino)
        if inode.size > 0:
            # CephFS moves unlinked inodes to the stray directory and purges
            # the RADOS objects asynchronously.
            self.sim.process(self.prt.delete_data(inode.ino, src=self.node),
                             name=f"purge:{inode.ino:x}")

    def rename(self, creds: Credentials, src: str, dst: str) -> SimGen:
        sparts, dparts = self._parts(src), self._parts(dst)
        if not sparts or not dparts:
            raise InvalidArgument(src, "cannot rename the root")
        if pathmod.is_ancestor(pathmod.normalize(src), pathmod.normalize(dst)):
            raise InvalidArgument(dst, "destination inside source")
        now = self.sim.now

        def mutate():
            sp, sname = self.ns.resolve_parent(creds, sparts)
            dp, dname = self.ns.resolve_parent(creds, dparts)
            return self.ns.rename(creds, sp, sname, dp, dname, now)

        removed = yield from self._mds(self._dirkey(src), mutate, weight=1.5)
        if removed is not None and removed.size > 0:
            yield from self.prt.delete_data(removed.ino, src=self.node)

    def stat(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)

        def mutate():
            return self.ns.node(self.ns.resolve(creds, parts)).inode.stat()

        return (yield from self._mds(self._dirkey(path), mutate))

    def lstat(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)

        def mutate():
            ino = self.ns.resolve(creds, parts, follow_final=False)
            return self.ns.node(ino).inode.stat()

        return (yield from self._mds(self._dirkey(path), mutate))

    def access(self, creds: Credentials, path: str, want: int) -> SimGen:
        parts = self._parts(path)

        def mutate():
            inode = self.ns.node(self.ns.resolve(creds, parts)).inode
            if want == F_OK:
                return True
            return check_perm(inode.acl, inode.mode, inode.uid, inode.gid,
                              creds, want)

        return (yield from self._mds(self._dirkey(path), mutate))

    # -- VFS: open / data ------------------------------------------------------------

    def open(self, creds: Credentials, path: str, flags: OpenFlags,
             mode: int = 0o666) -> SimGen:
        parts = self._parts(path)
        if not parts:
            raise IsADirectory("/")
        now = self.sim.now

        def mutate():
            parent, name = self.ns.resolve_parent(creds, parts)
            # Follow a final symlink to its target file.
            d = self.ns._dir(parent)
            child = d.children.get(name)
            if child is not None and self.ns.node(child).inode.is_symlink:
                tgt_ino = self.ns.resolve(creds, parts, follow_final=True)
                inode = self.ns.node(tgt_ino).inode
                if inode.is_dir:
                    raise IsADirectory(name)
                return inode, False
            return self.ns.create(creds, parent, name, flags, mode, now)

        inode, _created = yield from self._mds(self._dirkey(path), mutate)
        if flags & OpenFlags.O_TRUNC and inode.size > 0:
            old = inode.size
            inode.size = 0
            inode.mtime = inode.ctime = now
            yield from self._revoke_caps(inode.ino)
            yield from self.prt.truncate_data(inode.ino, old, 0,
                                              src=self.node)
        grant = yield from self.caps.acquire(inode.ino, self.name, READ)
        handle = FileHandle(inode.ino, flags, creds)
        handle.impl = _CephOpenState(size=inode.size, mtime=inode.mtime,
                                     lease=grant)
        if flags & OpenFlags.O_APPEND:
            handle.pos = inode.size
        return handle

    def _revoke_caps(self, ino: int) -> SimGen:
        st = self.caps.files.get(ino)
        if st is None:
            return
        yield from self.caps._revoke_all(st, ino, but="")
        st.version += 1

    def _check_handle(self, handle: FileHandle) -> None:
        if handle.closed or not isinstance(handle.impl, _CephOpenState):
            raise BadFileHandle(detail="handle closed or foreign")

    def _ensure_caps(self, handle: FileHandle, want: str) -> SimGen:
        st: _CephOpenState = handle.impl
        g = st.lease
        now = self.sim.now
        if (g is not None and g.expires_at > now
                and not (want == WRITE and g.mode == READ)):
            return g
        grant = yield from self.caps.acquire(handle.ino, self.name, want)
        if g is None or grant.version != g.version:
            yield from self.cache.invalidate(handle.ino, flush_dirty=False)
        st.lease = grant
        return grant

    def read(self, handle: FileHandle, size: int,
             offset: Optional[int] = None) -> SimGen:
        self._check_handle(handle)
        if self.params.fail_reads:
            # MarFS interactive mount: "MarFS returns errors when we perform
            # this phase in our environment" (Section IV-B).
            yield self.sim.timeout(0)
            raise UnsupportedOperation(detail="interactive-mount read failed")
        if not handle.flags.wants_read:
            raise BadFileHandle(detail="not open for reading")
        st: _CephOpenState = handle.impl
        pos = handle.pos if offset is None else offset
        grant = yield from self._ensure_caps(handle, READ)
        eff = max(0, min(size, st.size - pos))
        if eff == 0:
            data = b""
        elif grant.mode == DIRECT:
            data = yield from self.prt.read_data(handle.ino, pos, eff,
                                                 st.size, src=self.node)
        else:
            data = yield from self.cache.read(handle.ino, pos, eff, ra=st.ra)
        if offset is None:
            handle.pos = pos + len(data)
        return data

    def write(self, handle: FileHandle, data: bytes,
              offset: Optional[int] = None) -> SimGen:
        self._check_handle(handle)
        if not handle.flags.wants_write:
            raise BadFileHandle(detail="not open for writing")
        st: _CephOpenState = handle.impl
        pos = st.size if handle.flags & OpenFlags.O_APPEND else (
            handle.pos if offset is None else offset)
        grant = yield from self._ensure_caps(handle, WRITE)
        if grant.mode == DIRECT:
            yield from self.prt.write_data(handle.ino, pos, data,
                                           src=self.node)
            st.size = max(st.size, pos + len(data))
            self.ns.update_size(handle.ino, st.size, self.sim.now)
        else:
            yield from self.cache.write(handle.ino, pos, data,
                                        old_size=st.size)
            st.size = max(st.size, pos + len(data))
            st.wrote = True
        st.mtime = self.sim.now
        if offset is None:
            handle.pos = pos + len(data)
        return len(data)

    def fsync(self, handle: FileHandle) -> SimGen:
        self._check_handle(handle)
        st: _CephOpenState = handle.impl
        yield from self.cache.flush(handle.ino)
        if st.wrote:
            yield from self._publish_size(handle.ino, st)

    def _publish_size(self, ino: int, st: _CephOpenState) -> SimGen:
        def mutate():
            self.ns.update_size(ino, st.size, st.mtime)
            return True

        yield from self._mds(ino & 0xFFFFFFFF, mutate)
        st.wrote = False

    def close(self, handle: FileHandle) -> SimGen:
        self._check_handle(handle)
        st: _CephOpenState = handle.impl
        if st.wrote:
            try:
                yield from self._publish_size(handle.ino, st)
            except NotFound:
                pass
        else:
            yield self.sim.timeout(0)
        handle.closed = True

    def truncate(self, creds: Credentials, path: str, size: int) -> SimGen:
        parts = self._parts(path)
        now = self.sim.now

        def mutate():
            ino = self.ns.resolve(creds, parts)
            inode = self.ns.node(ino).inode
            old = inode.size
            self.ns.setattr(creds, ino, {"size": size}, now)
            return inode.ino, old

        ino, old = yield from self._mds(self._dirkey(path), mutate)
        if size < old:
            yield from self._revoke_caps(ino)
            yield from self.prt.truncate_data(ino, old, size, src=self.node)

    # -- VFS: attributes ----------------------------------------------------------------

    def _setattr(self, creds, path: str, changes: dict) -> SimGen:
        parts = self._parts(path)
        now = self.sim.now

        def mutate():
            ino = self.ns.resolve(creds, parts)
            return self.ns.setattr(creds, ino, changes, now).stat()

        return (yield from self._mds(self._dirkey(path), mutate))

    def chmod(self, creds: Credentials, path: str, mode: int) -> SimGen:
        yield from self._setattr(creds, path, {"mode": mode})

    def chown(self, creds: Credentials, path: str, uid: int, gid: int) -> SimGen:
        yield from self._setattr(creds, path, {"uid": uid, "gid": gid})

    def utimens(self, creds: Credentials, path: str, atime: float,
                mtime: float) -> SimGen:
        yield from self._setattr(creds, path, {"times": (atime, mtime)})

    def getfacl(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)

        def mutate():
            inode = self.ns.node(self.ns.resolve(creds, parts)).inode
            return inode.acl.copy() if inode.acl else Acl.from_mode(inode.mode)

        return (yield from self._mds(self._dirkey(path), mutate))

    def setfacl(self, creds: Credentials, path: str, acl: Acl) -> SimGen:
        yield from self._setattr(creds, path, {"acl": acl})

    # -- VFS: links ------------------------------------------------------------------------

    def symlink(self, creds: Credentials, target: str, linkpath: str) -> SimGen:
        parts = self._parts(linkpath)
        now = self.sim.now

        def mutate():
            parent, name = self.ns.resolve_parent(creds, parts)
            return self.ns.symlink(creds, parent, name, target, now)

        yield from self._mds(self._dirkey(linkpath), mutate)

    def readlink(self, creds: Credentials, path: str) -> SimGen:
        parts = self._parts(path)

        def mutate():
            ino = self.ns.resolve(creds, parts, follow_final=False)
            inode = self.ns.node(ino).inode
            if not inode.is_symlink:
                raise InvalidArgument(path, "not a symlink")
            return inode.symlink_target

        return (yield from self._mds(self._dirkey(path), mutate))

    # -- durability -----------------------------------------------------------------------------

    def sync(self) -> SimGen:
        yield from self.cache.flush_all()

    def drop_caches(self) -> SimGen:
        yield from self.cache.drop_all()


@dataclass
class CephFSCluster:
    """A built CephFS (or MarFS) deployment."""

    sim: Simulator
    net: Network
    store: ObjectStore
    mds: MDSCluster
    clients: List[CephLikeClient] = field(default_factory=list)
    mounts: List[VFSClient] = field(default_factory=list)

    def client(self, i: int = 0) -> CephLikeClient:
        return self.clients[i]

    def mount(self, i: int = 0) -> VFSClient:
        return self.mounts[i]


#: ceph-fuse's global client mutex (the well-known client_lock bottleneck).
CEPH_FUSE_MOUNT = MountParams(crossing_latency=10e-6, dispatch_cpu=3e-6,
                              entry_ttl=1.0, lookup_locked=True,
                              global_lock_service=120e-6,
                              data_lock_service=15e-6)


def build_cephfs(
    sim: Simulator,
    n_clients: int = 1,
    mds_params: MDSParams = CEPH_MDS,
    client_params: CephClientParams = CephClientParams(),
    mount: str = "kernel",
    store: Optional[ObjectStore] = None,
    store_profile: Optional[StoreProfile] = None,
    net_params: Optional[NetParams] = None,
    client_cores: int = 32,
    functional: bool = False,
    seed: int = 0,
) -> CephFSCluster:
    """Assemble a CephFS-like cluster (``mount``: "kernel" or "fuse")."""
    net = Network(sim, net_params or NetParams())
    if store is None:
        if functional:
            store = InMemoryObjectStore(sim)
        else:
            store = ClusterObjectStore(sim, store_profile or RADOS_PROFILE,
                                       net=net)
    alloc = InoAllocator(seed=seed)
    namespace = Namespace(alloc, now=sim.now)
    mds = MDSCluster(sim, net, namespace, mds_params)
    prt = PRT(store, client_params.object_size)

    cluster = CephFSCluster(sim=sim, net=net, store=store, mds=mds)
    registry: Dict[str, CephLikeClient] = {}

    def revoke_cb(holder: str, ino: int, deleted: bool = False) -> SimGen:
        client = registry[holder]
        # Cap revocation: an MDS-to-client message plus the flush. The
        # deleted flag is an ArkFS pack-layer concern; the baseline's
        # cache has no packed extents to retire.
        yield from net.send(mds.mds[0].node, client.node, 128)
        yield from client.cache.invalidate(ino, flush_dirty=True)

    caps = FileLeaseService(sim, client_params.caps_lease, revoke_cb)
    for i in range(n_clients):
        node = Node(sim, f"ceph-client{i}", cores=client_cores, net=net)
        client = CephLikeClient(sim, node, mds, prt, caps, client_params)
        registry[node.name] = client
        cluster.clients.append(client)
        if mount == "kernel":
            cluster.mounts.append(KernelMount(client, node, KERNEL_DEFAULTS))
        else:
            cluster.mounts.append(FuseMount(client, node, CEPH_FUSE_MOUNT))
    return cluster
