"""Metadata server (cluster) timing model.

Centralized DFS baselines (CephFS, MarFS) serve every metadata operation at
a dedicated MDS. The performance phenomena the paper measures come from:

* the network round trip from client to MDS for *every* metadata op;
* MDS CPU saturation (a single MDS caps aggregate throughput — Fig. 1);
* lock/journal contention that makes per-op service time *grow* with the
  number of concurrent client sessions, collapsing throughput at high
  client counts (the Fig. 1 shape beyond ~4 clients);
* with multiple MDSs, dynamic subtree partitioning: requests reaching the
  wrong MDS get forwarded (extra hop + extra service), and periodic load
  rebalancing migrates subtrees, stalling the participants — why 16 MDSs
  buy only ~2.4–3.2x in the paper (Figs. 4, 7).

The functional namespace mutation is executed *inside* the MDS service
section, so what clients observe is exactly what the MDS has applied.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List

from ..obs.trace import span as _span
from ..sim.engine import Interrupt, SimGen, Simulator
from ..sim.network import Network, Node
from ..sim.resources import Resource
from .namespace import Namespace

__all__ = ["MDSParams", "MDSCluster", "CEPH_MDS", "MARFS_MDS"]


def _svc_timeout(sim: Simulator, tr, name: str, delay: float) -> SimGen:
    """MDS service time, attributed as service when traced."""
    if delay <= 0:
        yield sim.timeout(0)
    elif tr is not None:
        with tr.span(name, "svc"):
            yield sim.timeout(delay)
    else:
        yield sim.timeout(delay)


@dataclass(frozen=True)
class MDSParams:
    """Calibration knobs for one MDS deployment."""

    n_mds: int = 1
    base_service: float = 50e-6       # CPU seconds per metadata op
    service_slots: int = 1            # mutations serialize on the MDS journal
    contention_alpha: float = 0.015   # service inflation per waiting session
    contention_knee: int = 4          # sessions before inflation kicks in
    forward_prob: float = 0.45        # multi-MDS: request hits wrong MDS
    forward_hop: float = 150e-6       # extra latency for a forwarded request
    rebalance_interval: float = 4.0   # dynamic subtree partitioning period
    rebalance_pause: float = 0.050    # MDS stalls this long per rebalance
    # Multi-MDS hierarchical locking: a fraction of ops must take a
    # distributed lock at the subtree's authority near the root, which
    # keeps N MDSs from scaling linearly (the paper's ≤3.24x at 16 MDSs).
    peer_lock_prob: float = 0.75
    peer_lock_weight: float = 0.8     # of base_service, spent at MDS 0
    rpc_bytes: int = 320              # request/response wire size


#: CephFS MDS defaults (calibrated; see EXPERIMENTS.md).
CEPH_MDS = MDSParams()

#: MarFS metadata path: two SpectrumScale NSD/metadata nodes, heavier ops.
MARFS_MDS = MDSParams(n_mds=2, base_service=110e-6, service_slots=1,
                      contention_alpha=0.02, forward_prob=0.5,
                      rebalance_interval=1e9)  # static: no rebalancing


class _MDS:
    """One metadata server: a bounded service queue with contention decay."""

    def __init__(self, sim: Simulator, index: int, net: Network,
                 params: MDSParams):
        self.index = index
        self.params = params
        self.node = Node(sim, f"mds{index}", cores=params.service_slots,
                         net=net)
        self.slots = Resource(sim, capacity=params.service_slots,
                              name=f"mds{index}.slots")
        self.active_sessions = 0
        self.ops_served = 0

    def service_time(self) -> float:
        """Per-op service grows once concurrent sessions exceed the knee —
        the lock/journal contention that collapses Fig. 1's curve."""
        p = self.params
        excess = max(0, self.active_sessions - p.contention_knee)
        return p.base_service * (1.0 + p.contention_alpha * excess)


class MDSCluster:
    """The metadata service: 1..N MDSs over one shared namespace."""

    def __init__(self, sim: Simulator, net: Network, namespace: Namespace,
                 params: MDSParams):
        self.sim = sim
        self.net = net
        self.namespace = namespace
        self.params = params
        self.mds: List[_MDS] = [
            _MDS(sim, i, net, params) for i in range(params.n_mds)
        ]
        self._hash_salt = 0x9E3779B9
        self._rng_state = 12345
        self._rebalancer = None
        if params.n_mds > 1 and params.rebalance_interval < 1e8:
            self._rebalancer = sim.process(self._rebalance_loop(),
                                           name="mds-rebalancer")

    # -- deterministic pseudo-randomness (no Math.random in sim) ---------------

    def _rand(self) -> float:
        self._rng_state = (1103515245 * self._rng_state + 12345) % (1 << 31)
        return self._rng_state / (1 << 31)

    def auth_mds(self, dir_key: int) -> _MDS:
        """Subtree partitioning: directories hash-assigned to MDSs."""
        h = zlib.crc32(f"{dir_key ^ self._hash_salt:x}".encode())
        return self.mds[h % len(self.mds)]

    def _rebalance_loop(self) -> SimGen:
        """Dynamic subtree partitioning: periodically reassign the hash salt
        (migrating subtrees) and stall every MDS for the migration pause."""
        try:
            while True:
                yield self.sim.timeout(self.params.rebalance_interval)
                self._hash_salt = (self._hash_salt * 31 + 17) & 0xFFFFFFFF
                for m in self.mds:
                    reqs = [m.slots.request() for _ in range(m.slots.capacity)]
                    for r in reqs:
                        yield r
                    yield self.sim.timeout(self.params.rebalance_pause)
                    for r in reqs:
                        m.slots.release(r)
        except Interrupt:
            return

    # -- the client-visible operation ------------------------------------------------

    def call(self, client_node: Node, dir_key: int,
             mutate: Callable[[], object], op_weight: float = 1.0) -> SimGen:
        """One metadata operation from a client.

        ``mutate`` runs the (synchronous) namespace change inside the MDS
        service section and its return value travels back to the client.
        FS errors raised by ``mutate`` propagate to the caller after the
        response trip, like any RPC error.
        """
        tr = self.sim._tracer
        target = self.auth_mds(dir_key)
        sp = _span(self.sim, "mds.call", "mds")
        try:
            # Client -> MDS request.
            yield from self.net.send(client_node, target.node,
                                     self.params.rpc_bytes)
            if len(self.mds) > 1 and self._rand() < self.params.forward_prob:
                # Wrong MDS: pay a forwarding hop to the authoritative one.
                yield from self._hop()
                yield from self.net.send(target.node, target.node, 0)
            if (len(self.mds) > 1 and target is not self.mds[0]
                    and self._rand() < self.params.peer_lock_prob):
                # Hierarchical locking: take the distributed lock at the
                # near-root authority before mutating — the shared bottleneck
                # that keeps multi-MDS clusters far from linear scaling.
                root = self.mds[0]
                yield from self._hop()
                root.active_sessions += 1
                req0 = root.slots.request()
                if tr is not None and not req0.granted:
                    with tr.span(root.slots._wait_name, "queue"):
                        yield req0
                else:
                    yield req0
                try:
                    # Same lock/journal contention inflation as a local op:
                    # the root authority degrades as the whole cluster leans
                    # on it.
                    yield from _svc_timeout(
                        self.sim, tr, f"mds{root.index}.svc",
                        root.service_time() * self.params.peer_lock_weight)
                finally:
                    root.slots.release(req0)
                    root.active_sessions -= 1
            target.active_sessions += 1
            req = target.slots.request()
            if tr is not None and not req.granted:
                with tr.span(target.slots._wait_name, "queue"):
                    yield req
            else:
                yield req
            try:
                yield from _svc_timeout(self.sim, tr,
                                        f"mds{target.index}.svc",
                                        target.service_time() * op_weight)
                target.ops_served += 1
                result = mutate()
                error = None
            except Exception as exc:  # noqa: BLE001 - surfaces below
                result, error = None, exc
            finally:
                target.slots.release(req)
                target.active_sessions -= 1
            # MDS -> client response.
            yield from self.net.send(target.node, client_node,
                                     self.params.rpc_bytes)
        finally:
            sp.close()
        if error is not None:
            raise error
        return result

    def _hop(self) -> SimGen:
        """A forwarding hop, attributed as network time when traced."""
        tr = self.sim._tracer
        if tr is not None:
            with tr.span("mds.forward", "net"):
                yield self.sim.timeout(self.params.forward_hop)
        else:
            yield self.sim.timeout(self.params.forward_hop)

    @property
    def total_ops(self) -> int:
        return sum(m.ops_served for m in self.mds)
