"""Baseline file systems the paper compares ArkFS against.

* :mod:`cephfs` — CephFS with 1..N MDSs, kernel (-K) and FUSE (-F) mounts.
* :mod:`marfs` — MarFS's interactive FUSE mount over two metadata nodes.
* :mod:`s3fs` — s3fs-fuse: path-keyed objects, whole-object rewrites,
  slow disk staging cache.
* :mod:`goofys` — goofys: streaming multipart writes, 400 MB read-ahead,
  relaxed POSIX.
* :mod:`mds` / :mod:`namespace` — the centralized metadata substrate the
  first two share.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from ..objectstore.base import ObjectStore
from ..objectstore.cluster import ClusterObjectStore
from ..objectstore.memory import InMemoryObjectStore
from ..objectstore.profiles import S3_PROFILE, StoreProfile
from ..posix.fuse import FUSE_DEFAULTS, FuseMount, MountParams
from ..sim.engine import Simulator
from ..sim.network import NetParams, Network, Node

from .cephfs import (
    CEPH_FUSE_MOUNT,
    CephClientParams,
    CephFSCluster,
    CephLikeClient,
    build_cephfs,
)
from .goofys import GoofysClient, GoofysParams
from .marfs import MARFS_MOUNT, build_marfs
from .mds import CEPH_MDS, MARFS_MDS, MDSCluster, MDSParams
from .namespace import Namespace, NSNode
from .s3common import Bucket, FileAttrs, key_of, list_names
from .s3fs import S3FSClient

__all__ = [
    "Bucket",
    "CEPH_FUSE_MOUNT",
    "CEPH_MDS",
    "CephClientParams",
    "CephFSCluster",
    "CephLikeClient",
    "FileAttrs",
    "GoofysClient",
    "GoofysParams",
    "MARFS_MDS",
    "MARFS_MOUNT",
    "MDSCluster",
    "MDSParams",
    "Namespace",
    "NSNode",
    "S3FSClient",
    "S3Cluster",
    "build_cephfs",
    "build_goofys",
    "build_marfs",
    "build_s3fs",
    "key_of",
    "list_names",
]


@dataclass
class S3Cluster:
    """A built S3-backed file-system deployment (s3fs or goofys)."""

    sim: Simulator
    net: Network
    store: ObjectStore
    bucket: Bucket
    clients: List = field(default_factory=list)
    mounts: List[FuseMount] = field(default_factory=list)

    def client(self, i: int = 0):
        return self.clients[i]

    def mount(self, i: int = 0) -> FuseMount:
        return self.mounts[i]


def _make_s3_env(sim, store, store_profile, net_params, functional):
    net = Network(sim, net_params or NetParams())
    if store is None:
        if functional:
            store = InMemoryObjectStore(sim)
        else:
            store = ClusterObjectStore(sim, store_profile or S3_PROFILE,
                                       net=net)
    return net, store, Bucket(store)


def build_s3fs(
    sim: Simulator,
    n_clients: int = 1,
    store: Optional[ObjectStore] = None,
    store_profile: Optional[StoreProfile] = None,
    net_params: Optional[NetParams] = None,
    mount_params: MountParams = FUSE_DEFAULTS,
    client_cores: int = 32,
    functional: bool = False,
) -> S3Cluster:
    """Assemble N s3fs mounts of one bucket."""
    net, store, bucket = _make_s3_env(sim, store, store_profile, net_params,
                                      functional)
    cluster = S3Cluster(sim=sim, net=net, store=store, bucket=bucket)
    for i in range(n_clients):
        node = Node(sim, f"s3fs-client{i}", cores=client_cores, net=net)
        client = S3FSClient(sim, node, bucket)
        cluster.clients.append(client)
        cluster.mounts.append(FuseMount(client, node, mount_params))
    return cluster


def build_goofys(
    sim: Simulator,
    n_clients: int = 1,
    params: GoofysParams = GoofysParams(),
    store: Optional[ObjectStore] = None,
    store_profile: Optional[StoreProfile] = None,
    net_params: Optional[NetParams] = None,
    mount_params: MountParams = FUSE_DEFAULTS,
    client_cores: int = 32,
    functional: bool = False,
) -> S3Cluster:
    """Assemble N goofys mounts of one bucket."""
    net, store, bucket = _make_s3_env(sim, store, store_profile, net_params,
                                      functional)
    cluster = S3Cluster(sim=sim, net=net, store=store, bucket=bucket)
    for i in range(n_clients):
        node = Node(sim, f"goofys-client{i}", cores=client_cores, net=net)
        client = GoofysClient(sim, node, bucket, params)
        cluster.clients.append(client)
        cluster.mounts.append(FuseMount(client, node, mount_params))
    return cluster
